// Observability subsystem: metrics registry, JSON writer/validator, event
// log, schedule analysis invariants, trace export, and the workflow's
// round-by-round history.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/report.h"
#include "obs/schedule_analysis.h"
#include "obs/trace_export.h"
#include "sim/trace.h"
#include "util/memtrack.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

// Same deterministic 1 ms compute op the simulator tests use.
Operation ComputeOp(const std::string& name, double millis = 1.0,
                    int64_t out_bytes = 4096) {
  Operation op;
  op.name = name;
  op.type = OpType::kMatMul;
  op.output_shape = TensorShape{out_bytes / 4};
  op.flops = (millis * 1e-3 - 4e-6) * 15.7e12 * 0.70;
  op.bytes_touched = 0;
  return op;
}

// ---- JSON -----------------------------------------------------------------

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, NumberHandlesNonFinite) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  // NaN/Inf have no JSON spelling; emitting null keeps documents parseable
  // by strict consumers instead of smuggling in a fake zero.
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(JsonNumber(-1.0 / 0.0), "null");
}

TEST(Json, NonFiniteGaugeStillValidatesAsJson) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nan_gauge").Number(std::nan(""));
  w.Key("ok").Number(2.0);
  w.EndObject();
  EXPECT_TRUE(JsonValidate(w.str())) << w.str();
  JsonValue root;
  ASSERT_TRUE(JsonParse(w.str(), &root));
  ASSERT_NE(root.Find("nan_gauge"), nullptr);
  EXPECT_TRUE(root.Find("nan_gauge")->is_null());
  EXPECT_EQ(root.Find("ok")->NumberOr(0.0), 2.0);
}

TEST(Json, ParseBuildsDom) {
  const std::string doc =
      "{\"s\": \"a\\u0041\\n\", \"n\": -1.5e2, \"b\": true, \"nul\": null,"
      " \"arr\": [1, \"two\", {\"k\": 3}], \"obj\": {\"x\": 1}}";
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(doc, &root, &error)) << error;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("s")->StringOr(""), "aA\n");
  EXPECT_EQ(root.Find("n")->NumberOr(0.0), -150.0);
  EXPECT_TRUE(root.Find("b")->bool_v);
  EXPECT_TRUE(root.Find("nul")->is_null());
  const JsonValue* arr = root.Find("arr");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_EQ(arr->items[0].NumberOr(0.0), 1.0);
  EXPECT_EQ(arr->items[1].StringOr(""), "two");
  EXPECT_EQ(arr->items[2].Find("k")->NumberOr(0.0), 3.0);
  EXPECT_EQ(root.Find("obj")->Find("x")->NumberOr(0.0), 1.0);
  EXPECT_EQ(root.Find("missing"), nullptr);

  EXPECT_FALSE(JsonParse("{\"trailing\": 1,}", &root, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonParse("[1, 2", &root));
}

TEST(Json, WriterProducesValidNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("makespan").Number(0.012);
  w.Key("name").String("a\"b");
  w.Key("devices").BeginArray();
  w.BeginObject();
  w.Key("id").Int(0);
  w.Key("oom").Bool(false);
  w.EndObject();
  w.Int(7);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"makespan\":0.012,\"name\":\"a\\\"b\","
            "\"devices\":[{\"id\":0,\"oom\":false},7]}");
  EXPECT_TRUE(JsonValidate(w.str()));
}

TEST(Json, Int64RoundTripBeyondDoublePrecision) {
  // Doubles only cover integers up to 2^53; the DOM must carry larger int64
  // values through a write -> parse round trip unchanged.
  const int64_t interesting[] = {
      0,
      -1,
      (int64_t{1} << 53) - 1,
      (int64_t{1} << 53) + 1,  // first value a double cannot represent
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
  };
  for (const int64_t v : interesting) {
    JsonWriter w;
    w.BeginObject();
    w.Key("v").Int(v);
    w.EndObject();
    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonParse(w.str(), &root, &error)) << error;
    const JsonValue* f = root.Find("v");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->is_int) << v;
    EXPECT_EQ(f->IntOr(0), v) << v;
  }
  // Property: random int64 values survive the round trip exactly.
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng());
    JsonWriter w;
    w.BeginArray();
    w.Int(v);
    w.EndArray();
    JsonValue root;
    ASSERT_TRUE(JsonParse(w.str(), &root));
    ASSERT_EQ(root.items.size(), 1u);
    EXPECT_EQ(root.items[0].IntOr(0), v);
  }
}

TEST(Json, NonIntegralNumbersStayDoubleOnly) {
  JsonValue root;
  ASSERT_TRUE(JsonParse("[1.5, 1e3, 42, -0.0, 99999999999999999999999]",
                        &root));
  ASSERT_EQ(root.items.size(), 5u);
  EXPECT_FALSE(root.items[0].is_int);
  EXPECT_DOUBLE_EQ(root.items[0].NumberOr(0.0), 1.5);
  EXPECT_EQ(root.items[0].IntOr(-7), 1);  // truncated double
  EXPECT_FALSE(root.items[1].is_int);     // exponent form
  EXPECT_DOUBLE_EQ(root.items[1].NumberOr(0.0), 1000.0);
  EXPECT_TRUE(root.items[2].is_int);
  EXPECT_EQ(root.items[2].IntOr(0), 42);
  EXPECT_FALSE(root.items[3].is_int);  // "-0.0" is not integral
  EXPECT_EQ(root.items[3].IntOr(-7), 0);
  // Out of int64 range: parses, but only as an (approximate) double.
  EXPECT_FALSE(root.items[4].is_int);
  EXPECT_GT(root.items[4].NumberOr(0.0), 9e22);
}

TEST(Json, ValidateAcceptsAndRejects) {
  EXPECT_TRUE(JsonValidate("{\"a\": [1, 2.5e-3, \"x\", null, true]}"));
  std::string error;
  EXPECT_FALSE(JsonValidate("{\"a\": }", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValidate("[1, 2,]"));
  EXPECT_FALSE(JsonValidate("[1] trailing"));
  EXPECT_FALSE(JsonValidate(""));
  EXPECT_TRUE(JsonlValidate("{\"a\": 1}\n{\"b\": 2}\n"));
  EXPECT_FALSE(JsonlValidate("{\"a\": 1}\nnot json\n"));
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(Metrics, CountersGaugesTimers) {
  MetricsRegistry r;
  r.AddCounter("x");
  r.AddCounter("x", 4);
  EXPECT_EQ(r.counter("x"), 5);
  EXPECT_EQ(r.counter("absent"), 0);
  r.SetGauge("g", 2.5);
  r.SetGauge("g", 3.5);
  EXPECT_DOUBLE_EQ(r.gauge("g"), 3.5);
  r.RecordTimer("t", 0.25);
  r.RecordTimer("t", 0.75);
  EXPECT_EQ(r.timer_count("t"), 2);
  EXPECT_DOUBLE_EQ(r.timer_total_s("t"), 1.0);
  r.Reset();
  EXPECT_EQ(r.counter("x"), 0);
  EXPECT_EQ(r.timer_count("t"), 0);
}

TEST(Metrics, ConcurrentCounterBumpsAreExact) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&r] {
      for (int j = 0; j < kBumps; ++j) r.AddCounter("shared");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.counter("shared"), int64_t{kThreads} * kBumps);
}

TEST(Metrics, ScopedTimerNests) {
  MetricsRegistry r;
  {
    ScopedTimer outer(r, "outer");
    {
      ScopedTimer inner(r, "inner");
      // Busy-wait a little so inner has measurable duration.
      volatile double sink = 0;
      for (int i = 0; i < 100000; ++i) sink = sink + i;
      (void)sink;
    }
  }
  EXPECT_EQ(r.timer_count("outer"), 1);
  EXPECT_EQ(r.timer_count("inner"), 1);
  // The outer scope encloses the inner one.
  EXPECT_GE(r.timer_total_s("outer"), r.timer_total_s("inner"));
}

TEST(Metrics, JsonExportIsValid) {
  MetricsRegistry r;
  r.AddCounter("dpos/invocations", 3);
  r.SetGauge("calculator/last_iteration_s", 0.08);
  r.RecordTimer("sim/simulate", 0.002);
  EXPECT_TRUE(JsonValidate(r.ToJson()));
  EXPECT_NE(r.ToJson().find("\"dpos/invocations\":3"), std::string::npos);

  EventLog events;
  events.Emit("round").Int("round", 1).Bool("committed", true);
  const std::string doc = MetricsToJson(r, &events);
  EXPECT_TRUE(JsonValidate(doc));
  EXPECT_NE(doc.find("\"events\""), std::string::npos);
}

TEST(Metrics, PublishSearchPoolMetricsExportsGauges) {
  SetSearchJobs(2);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 8; ++batch) {
    ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  }
  SetSearchJobs(1);  // retires the pool; stats must survive the retirement
  EXPECT_EQ(ran.load(), 8 * 64);

  const PoolStats stats = SearchPoolStats();
  EXPECT_GE(stats.batches, 8u);
  // `tasks` counts worker-side executions only (the caller steals chunks
  // too), so the exact count is timing-dependent — but the per-worker
  // breakdown must always reconcile with the total.
  uint64_t per_worker = 0;
  for (const uint64_t n : stats.worker_tasks) per_worker += n;
  EXPECT_EQ(per_worker, stats.tasks);

  MetricsRegistry r;
  PublishSearchPoolMetrics(r);
  const std::string json = r.ToJson();
  EXPECT_TRUE(JsonValidate(json));
  EXPECT_NE(json.find("\"pool/tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"pool/batches\""), std::string::npos);
  EXPECT_NE(json.find("\"pool/queue_wait_total_s\""), std::string::npos);
  // Re-publishing overwrites the gauges rather than double-counting.
  PublishSearchPoolMetrics(r);
  JsonValue root;
  ASSERT_TRUE(JsonParse(r.ToJson(), &root));
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->is_object());
  EXPECT_GE(gauges->Find("pool/batches")->NumberOr(0.0), 8.0);
}

TEST(Metrics, ResetZeroesInPlaceAndCounterRefSurvives) {
  MetricsRegistry r;
  // The node-stable storage contract: a handle taken before Reset() must
  // stay valid (and zeroed) after it.
  std::atomic<int64_t>& hot = r.CounterRef("hot/path");
  hot.fetch_add(41, std::memory_order_relaxed);
  r.AddCounter("hot/path");  // name lookup and handle hit the same node
  EXPECT_EQ(r.counter("hot/path"), 42);
  r.SetGauge("g", 1.0);
  r.RecordHistogram("h", 2.0);
  r.Reset();
  EXPECT_EQ(r.counter("hot/path"), 0);
  EXPECT_DOUBLE_EQ(r.gauge("g"), 0.0);
  EXPECT_EQ(r.histogram("h").count, 0);
  // The pre-Reset handle still addresses the live node.
  hot.fetch_add(7, std::memory_order_relaxed);
  EXPECT_EQ(r.counter("hot/path"), 7);
  EXPECT_EQ(&r.CounterRef("hot/path"), &hot);
}

// ---- Histograms -----------------------------------------------------------

TEST(Histogram, BucketBoundariesAreExactPowersOfTwo) {
  // 2^k lands in the bucket whose inclusive upper bound is 2^k; one ulp
  // above moves to the next bucket.
  for (int k : {-10, -1, 0, 1, 10, 20}) {
    const double v = std::ldexp(1.0, k);
    const size_t b = HistogramBucket(v);
    EXPECT_DOUBLE_EQ(HistogramBucketUpper(b), v) << "k=" << k;
    EXPECT_EQ(HistogramBucket(std::nextafter(
                  v, std::numeric_limits<double>::infinity())),
              b + 1)
        << "k=" << k;
  }
  // Degenerate inputs stay in range.
  EXPECT_EQ(HistogramBucket(0.0), 0u);
  EXPECT_EQ(HistogramBucket(-5.0), 0u);
  EXPECT_EQ(HistogramBucket(std::numeric_limits<double>::infinity()),
            kHistBuckets - 1);
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram
  h.Record(1.0);
  h.Record(4.0);
  h.Record(16.0);
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 21.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, QuantilesAreMonotoneAndClampedToRange) {
  HistogramSnapshot h;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 1e3);
  for (int i = 0; i < 1000; ++i) h.Record(dist(rng));
  double prev = h.Quantile(0.0);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, h.min);
    EXPECT_LE(v, h.max);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(Histogram, MergeMatchesRecordingEverythingIntoOne) {
  HistogramSnapshot a, b, all;
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(0.5, 256.0);
  for (int i = 0; i < 200; ++i) {
    const double v = dist(rng);
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.sum, all.sum);
  EXPECT_DOUBLE_EQ(a.min, all.min);
  EXPECT_DOUBLE_EQ(a.max, all.max);
  EXPECT_EQ(a.buckets, all.buckets);
  // Merging into an empty histogram is a copy.
  HistogramSnapshot empty;
  empty.Merge(all);
  EXPECT_EQ(empty.count, all.count);
}

TEST(Histogram, JsonRoundTripsThroughJsonParse) {
  HistogramSnapshot h;
  for (double v : {0.001, 0.5, 1.0, 3.0, 1024.0, 1e9}) h.Record(v);
  const std::string json = h.ToJson();
  EXPECT_TRUE(JsonValidate(json));
  JsonValue dom;
  ASSERT_TRUE(JsonParse(json, &dom));
  HistogramSnapshot back;
  ASSERT_TRUE(HistogramFromJson(dom, &back));
  EXPECT_EQ(back.count, h.count);
  // JsonNumber prints %.9g, so doubles survive to ~9 significant digits.
  EXPECT_NEAR(back.sum, h.sum, 1e-8 * h.sum);
  EXPECT_DOUBLE_EQ(back.min, h.min);
  EXPECT_DOUBLE_EQ(back.max, h.max);
  EXPECT_EQ(back.buckets, h.buckets);
  EXPECT_NEAR(back.p99(), h.p99(), 1e-8 * h.p99());

  // Malformed inputs are rejected, not misread.
  JsonValue bad;
  ASSERT_TRUE(JsonParse("{\"count\":2,\"buckets\":[]}", &bad));
  HistogramSnapshot out;
  EXPECT_FALSE(HistogramFromJson(bad, &out));  // bucket sum != count
  ASSERT_TRUE(JsonParse("{\"sum\":1.0}", &bad));
  EXPECT_FALSE(HistogramFromJson(bad, &out));  // no count at all
}

TEST(Histogram, RegistryRecordsAndExports) {
  MetricsRegistry r;
  r.RecordHistogram("probe/latency_s", 0.001);
  r.RecordHistogram("probe/latency_s", 0.004);
  EXPECT_EQ(r.histogram("probe/latency_s").count, 2);
  EXPECT_EQ(r.histogram("absent").count, 0);
  const std::string json = r.ToJson();
  EXPECT_TRUE(JsonValidate(json));
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"probe/latency_s\""), std::string::npos);
  {
    ScopedLatencyHistogram scope(r, "scoped/latency_s");
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_EQ(r.histogram("scoped/latency_s").count, 1);
  EXPECT_GT(r.histogram("scoped/latency_s").max, 0.0);
}

// ---- PublishMemMetrics ----------------------------------------------------

TEST(Metrics, PublishMemMetricsExportsTaggedHeapStats) {
  MemTracker& mt = MemTracker::Global();
  mt.Enable();
  {
    TaggedVector<int64_t> v{TaggedAlloc<int64_t>(MemTag::kGraph)};
    v.resize(1000);
    MetricsRegistry r;
    PublishMemMetrics(r);
    const std::string json = r.ToJson();
    EXPECT_TRUE(JsonValidate(json));
    EXPECT_NE(json.find("\"mem/graph/live_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"mem/graph/alloc_size_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"mem/total/peak_bytes\""), std::string::npos);
    EXPECT_GE(r.gauge("mem/graph/live_bytes"), 8000.0);
    EXPECT_GE(r.gauge("mem/total/allocs"), 1.0);
    const HistogramSnapshot sizes = r.histogram("mem/graph/alloc_size_bytes");
    EXPECT_GE(sizes.count, 1);
    // Republishing overwrites rather than double-counting.
    PublishMemMetrics(r);
    EXPECT_EQ(r.histogram("mem/graph/alloc_size_bytes").count, sizes.count);
  }
  mt.Disable();
  // A never-active tracker publishes nothing.
  mt.Reset();
  MetricsRegistry empty;
  PublishMemMetrics(empty);
  EXPECT_EQ(empty.ToJson().find("\"mem/"), std::string::npos);
}

// ---- EventLog -------------------------------------------------------------

TEST(EventLog, EmitsValidJsonlWithSeqAndType) {
  EventLog log;
  log.Emit("bootstrap").Str("start_strategy", "data parallel").Int("ops", 42);
  log.Emit("round")
      .Int("round", 1)
      .Number("predicted_s", 0.080)
      .Bool("committed", true);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(JsonlValidate(log.ToJsonl()));
  EXPECT_NE(log.line(0).find("\"event\":\"bootstrap\""), std::string::npos);
  EXPECT_NE(log.line(0).find("\"seq\":0"), std::string::npos);
  EXPECT_NE(log.line(1).find("\"seq\":1"), std::string::npos);
  EXPECT_NE(log.line(1).find("\"committed\":true"), std::string::npos);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, ConcurrentEmittersLoseNothing) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit("spam").Int("thread", t).Int("i", i);
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(log.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(JsonlValidate(log.ToJsonl()));
  // Every seq in [0, N) appears exactly once, even if lines landed out of
  // seq order under the race.
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (size_t i = 0; i < log.size(); ++i) {
    const std::string line = log.line(i);
    JsonValue obj;
    ASSERT_TRUE(JsonParse(line, &obj)) << line;
    const JsonValue* seq = obj.Find("seq");
    ASSERT_NE(seq, nullptr) << line;
    const auto s = static_cast<size_t>(seq->NumberOr(-1.0));
    ASSERT_LT(s, seen.size());
    EXPECT_FALSE(seen[s]) << "duplicate seq " << s;
    seen[s] = true;
  }
}

// ---- Schedule analysis ----------------------------------------------------

// Hand-built 2-device graph: a chain a -> b crossing devices (so the path
// has a transfer) plus an independent op c keeping device 0 busy.
struct TwoDeviceFixture {
  Graph g;
  Cluster cluster = Cluster::SingleServer(2);
  SimResult sim;
  TwoDeviceFixture() {
    const OpId a = g.AddOp(ComputeOp("a", 2.0, 9 * 1000 * 1000));
    const OpId b = g.AddOp(ComputeOp("b", 3.0));
    const OpId c = g.AddOp(ComputeOp("c", 1.0));
    g.AddEdge(a, b);
    (void)c;
    SimOptions options;
    options.record_memory_timeline = true;
    sim = Simulate(g, {0, 1, 0}, cluster, options);
  }
};

TEST(ScheduleAnalysis, CriticalPathSegmentsSumToMakespan) {
  TwoDeviceFixture f;
  const ScheduleAnalysis a = AnalyzeSchedule(f.g, f.sim, f.cluster);
  EXPECT_GT(a.makespan, 0.0);
  ASSERT_FALSE(a.critical_path.empty());
  double sum = 0.0;
  for (const CriticalPathSegment& s : a.critical_path) {
    EXPECT_GE(s.duration(), -1e-12);
    sum += s.duration();
  }
  EXPECT_NEAR(sum, a.makespan, 1e-9);
  // The path is contiguous: each segment starts where the previous ended,
  // beginning at t = 0 and ending at the makespan.
  EXPECT_NEAR(a.critical_path.front().start, 0.0, 1e-12);
  EXPECT_NEAR(a.critical_path.back().finish, a.makespan, 1e-12);
  for (size_t i = 1; i < a.critical_path.size(); ++i)
    EXPECT_NEAR(a.critical_path[i].start, a.critical_path[i - 1].finish,
                1e-12);
  // Totals decompose the makespan by segment kind.
  EXPECT_NEAR(a.cp_op_s + a.cp_transfer_s + a.cp_wait_s, a.makespan, 1e-9);
  // The cross-device chain a -> b must put a transfer on the path.
  EXPECT_GT(a.cp_transfer_s, 0.0);
}

TEST(ScheduleAnalysis, UtilizationPlusBubbleIsOnePerDevice) {
  TwoDeviceFixture f;
  const ScheduleAnalysis a = AnalyzeSchedule(f.g, f.sim, f.cluster);
  ASSERT_EQ(a.devices.size(), 2u);
  for (const DeviceBreakdown& d : a.devices) {
    EXPECT_NEAR(d.utilization + d.bubble_fraction, 1.0, 1e-9);
    EXPECT_NEAR(d.busy_s + d.idle_s, a.makespan, 1e-9);
    EXPECT_GE(d.longest_bubble_s, 0.0);
  }
  EXPECT_EQ(a.devices[0].num_ops, 2);  // a and c
  EXPECT_EQ(a.devices[1].num_ops, 1);  // b
  // Device 1 idles while a computes and the tensor moves: it has a bubble.
  EXPECT_GT(a.devices[1].bubble_fraction, 0.0);
  EXPECT_GE(a.devices[1].num_bubbles, 1);
}

TEST(ScheduleAnalysis, RankingsAndLinks) {
  TwoDeviceFixture f;
  const ScheduleAnalysis a = AnalyzeSchedule(f.g, f.sim, f.cluster);
  ASSERT_FALSE(a.top_ops.empty());
  // b (3 ms) dominates the path.
  EXPECT_EQ(a.top_ops[0].name, "b");
  for (size_t i = 1; i < a.top_ops.size(); ++i)
    EXPECT_GE(a.top_ops[i - 1].seconds, a.top_ops[i].seconds);
  ASSERT_EQ(a.top_transfers.size(), 1u);
  EXPECT_EQ(a.top_transfers[0].name, "a");
  EXPECT_EQ(a.top_transfers[0].bytes, 9 * 1000 * 1000);
  ASSERT_EQ(a.links.size(), 1u);
  EXPECT_EQ(a.links[0].src, 0);
  EXPECT_EQ(a.links[0].dst, 1);
  EXPECT_EQ(a.links[0].num_transfers, 1);
  EXPECT_GT(a.links[0].achieved_bandwidth, 0.0);
}

TEST(ScheduleAnalysis, RenderAndJsonExport) {
  TwoDeviceFixture f;
  const ScheduleAnalysis a = AnalyzeSchedule(f.g, f.sim, f.cluster);
  const std::string text = RenderScheduleAnalysis(f.g, a);
  EXPECT_NE(text.find("Per-device utilization"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  const std::string json = ScheduleAnalysisToJson(f.g, a);
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\""), std::string::npos);
}

// ---- Trace export ---------------------------------------------------------

TEST(Trace, ChromeTraceIsValidJsonWithFlowAndCounters) {
  TwoDeviceFixture f;
  const std::string trace = ExportChromeTrace(f.g, f.sim);
  std::string error;
  EXPECT_TRUE(JsonValidate(trace, &error)) << error;
  // Flow arrow for the a -> b tensor and memory counter samples.
  EXPECT_NE(trace.find("\"cat\": \"flow\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(trace.find("GPU 0 memory"), std::string::npos);
}

TEST(Trace, MemoryTimelineOnlyWhenRequested) {
  Graph g;
  g.AddOp(ComputeOp("a", 1.0));
  const Cluster c = Cluster::SingleServer(1);
  EXPECT_TRUE(Simulate(g, {0}, c).memory_timeline.empty());
  SimOptions options;
  options.record_memory_timeline = true;
  const SimResult r = Simulate(g, {0}, c, options);
  ASSERT_EQ(r.memory_timeline.size(), 1u);
  EXPECT_FALSE(r.memory_timeline[0].empty());
}

// ---- Workflow round history ----------------------------------------------

TEST(Workflow, RoundHistoryAndEventsRecorded) {
  const ModelSpec& spec = FindModel("lenet");
  CalculatorOptions options;
  options.max_rounds = 3;
  const auto ft = RunFastT(spec.build, spec.name, 64, Scaling::kStrong,
                           Cluster::SingleServer(2), options);
  ASSERT_EQ(static_cast<int>(ft.round_history.size()), ft.rounds);
  int commits = 0;
  for (const RoundSummary& r : ft.round_history) {
    EXPECT_GT(r.predicted_s, 0.0);
    EXPECT_GT(r.measured_s, 0.0);
    EXPECT_GE(r.ops_replaced, 0);
    if (r.committed) ++commits;
  }
  // Every round activates its candidate; the uncommitted ones roll back.
  EXPECT_EQ(ft.activations, ft.rounds);
  EXPECT_EQ(commits, ft.activations - ft.rollbacks);
  // The event log narrates the run and is valid JSONL.
  EXPECT_GT(ft.events.size(), 0u);
  EXPECT_TRUE(JsonlValidate(ft.events.ToJsonl()));
  EXPECT_NE(ft.events.ToJsonl().find("\"event\":\"final\""),
            std::string::npos);
}

TEST(Workflow, VerifierNarratesEveryRound) {
  const ModelSpec& spec = FindModel("lenet");
  CalculatorOptions options;
  options.max_rounds = 2;
  options.verify_full = true;  // exercise the full rule set in-workflow
  const auto ft = RunFastT(spec.build, spec.name, 64, Scaling::kStrong,
                           Cluster::SingleServer(2), options);
  // One "verify" event per pre-training round, all clean on real searches.
  const std::string jsonl = ft.events.ToJsonl();
  EXPECT_TRUE(JsonlValidate(jsonl));
  size_t verify_events = 0;
  for (size_t pos = 0;
       (pos = jsonl.find("\"event\":\"verify\"", pos)) != std::string::npos;
       ++pos)
    ++verify_events;
  EXPECT_EQ(verify_events, static_cast<size_t>(ft.rounds));
  EXPECT_EQ(jsonl.find("\"event\":\"verify_reject\""), std::string::npos);
  for (const RoundSummary& r : ft.round_history) {
    EXPECT_EQ(r.verify_errors, 0);
    EXPECT_TRUE(r.verify_reject_rule.empty());
  }
}

TEST(Json, VerifierDiagnosticsDocumentValidates) {
  Graph g("tiny");
  Operation op;
  op.name = "a";
  g.AddOp(op);
  Strategy strategy;  // empty placement/order: several rules fire
  const VerifyResult result =
      VerifyStrategy(g, strategy, Cluster::SingleServer(1));
  ASSERT_FALSE(result.ok());
  const std::string json = DiagnosticsToJson(g, result);
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(JsonParse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("errors")->IntOr(-1), result.errors);
  EXPECT_EQ(doc.Find("diagnostics")->items.size(),
            result.diagnostics.size());
}

// ---- TablePrinter alignment ----------------------------------------------

// ---- Leveled logger ------------------------------------------------------
// Each TEST runs in its own ctest process (gtest_discover_tests), so the
// process-global threshold mutations here cannot leak between tests.

TEST(Log, ParseLevelRoundTrip) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug}) {
    LogLevel parsed = LogLevel::kError;
    EXPECT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel parsed = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("chatty", &parsed));
  EXPECT_FALSE(ParseLogLevel("", &parsed));
}

TEST(Log, EnsureRaisesDefaultButNeverOverridesExplicit) {
  ::unsetenv("FASTT_LOG_LEVEL");
  // Untouched default: warn. An opt-in diagnostic may raise it...
  ASSERT_EQ(LogThreshold(), LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EnsureLogThresholdAtLeast(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  // ...but an explicit choice wins over any later courtesy raise —
  // `--log-level error` must stay quiet even with trace env vars set.
  SetLogThreshold(LogLevel::kError);
  EnsureLogThresholdAtLeast(LogLevel::kDebug);
  EXPECT_EQ(LogThreshold(), LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
}

TEST(Log, MessagesLandInAmbientEventLog) {
  SetLogThreshold(LogLevel::kInfo);
  TelemetryContext context;
  {
    TelemetryScope scope(context);
    FASTT_LOG(Info, "round %d drifted %.1f%%", 3, 12.5);
    FASTT_LOG(Debug, "suppressed below the threshold");
  }
  ASSERT_EQ(context.events().size(), 1u);
  JsonValue event;
  std::string error;
  ASSERT_TRUE(JsonParse(context.events().line(0), &event, &error)) << error;
  const JsonValue* level = event.Find("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->StringOr(""), "info");
  const JsonValue* msg = event.Find("msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->StringOr(""), "round 3 drifted 12.5%");
}

// ---- OpenMetrics exposition ----------------------------------------------

TEST(OpenMetrics, NameSanitizationAndPrefix) {
  EXPECT_EQ(OpenMetricsName("dpos/latency_s"), "fastt_dpos_latency_s");
  EXPECT_EQ(OpenMetricsName("pool.queue-wait"), "fastt_pool_queue_wait");
  EXPECT_EQ(OpenMetricsName("already_ok:x9"), "fastt_already_ok:x9");
}

TEST(OpenMetrics, ExpositionCoversEveryMetricKindAndEndsWithEof) {
  MetricsRegistry registry;
  registry.AddCounter("dpos/invocations", 3);
  registry.SetGauge("pool/jobs", 2.0);
  registry.RecordTimer("dpos/total", 0.5);
  registry.RecordTimer("dpos/total", 1.5);
  registry.RecordHistogram("osdpos/trial_latency_s", 0.001);
  registry.RecordHistogram("osdpos/trial_latency_s", 0.002);
  const std::string text = OpenMetricsText(registry);

  EXPECT_NE(text.find("# TYPE fastt_dpos_invocations counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fastt_dpos_invocations_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fastt_pool_jobs gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fastt_pool_jobs 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fastt_dpos_total summary\n"), std::string::npos);
  EXPECT_NE(text.find("fastt_dpos_total_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("fastt_dpos_total_sum 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fastt_osdpos_trial_latency_s histogram\n"),
            std::string::npos);
  // The mandatory +Inf bucket equals the observation count, and the series
  // carries _sum and _count.
  EXPECT_NE(text.find("fastt_osdpos_trial_latency_s_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fastt_osdpos_trial_latency_s_count 2\n"),
            std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// ---- fastt-report/1 bundles ----------------------------------------------

TEST(RunReport, BundleCarriesSchemaParamsMetricsEventsAndSections) {
  MetricsRegistry registry;
  registry.AddCounter("dpos/invocations", 2);
  EventLog events;
  events.Emit("round").Int("round", 1);
  TraceSummary summary;
  summary.phases.push_back(TracePhase{"search/total", 1, 0.5, 0.25});

  RunReport report("run", "lenet");
  report.SetParam("gpus", 4);
  report.SetParam("batch", 256);
  report.SetMetrics(registry);
  report.SetEvents(events);
  report.SetTraceSummary(summary);
  report.AddSection("calibration", "{\"rounds\":[]}");

  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonValidate(json)) << json;
  JsonValue doc;
  ASSERT_TRUE(JsonParse(json, &doc));
  const JsonValue* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->StringOr(""), "fastt-report/1");
  const JsonValue* params = doc.Find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->Find("gpus")->IntOr(0), 4);
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")->Find("dpos/invocations")->IntOr(0), 2);
  const JsonValue* ev = doc.Find("events");
  ASSERT_NE(ev, nullptr);
  ASSERT_TRUE(ev->is_array());
  EXPECT_EQ(ev->items.size(), 1u);
  const JsonValue* phases = doc.Find("trace_phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 1u);
  EXPECT_EQ(phases->items[0].Find("name")->StringOr(""), "search/total");
  const JsonValue* calibration = doc.Find("calibration");
  ASSERT_NE(calibration, nullptr);
  EXPECT_TRUE(calibration->is_object());
}

TEST(RunReport, SurfacesDroppedTraceCountsAndBuildProvenance) {
  TraceSummary summary;
  summary.phases.push_back(TracePhase{"search/total", 1, 0.5, 0.25});
  summary.dropped_events = 14;
  summary.dropped_spans = 2;
  RunReport report("run", "lenet");
  report.SetTraceSummary(summary);

  JsonValue doc;
  ASSERT_TRUE(JsonParse(report.ToJson(), &doc));
  // Ring wraparound is data loss; the bundle must say so, not just shrink.
  const JsonValue* dropped = doc.Find("trace_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->Find("events")->IntOr(0), 14);
  EXPECT_EQ(dropped->Find("spans")->IntOr(0), 2);
  // Every report states which build produced it.
  const JsonValue* build = doc.Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->Find("git_sha")->StringOr("").empty());
  EXPECT_FALSE(build->Find("compiler")->StringOr("").empty());
  EXPECT_FALSE(build->Find("build_type")->StringOr("").empty());
}

TEST(RunReport, OptionalSectionsAreOmittedWhenUnset) {
  RunReport bare("models", "");
  JsonValue doc;
  ASSERT_TRUE(JsonParse(bare.ToJson(), &doc));
  EXPECT_NE(doc.Find("schema"), nullptr);
  EXPECT_NE(doc.Find("params"), nullptr);
  EXPECT_EQ(doc.Find("metrics"), nullptr);
  EXPECT_EQ(doc.Find("events"), nullptr);
  EXPECT_EQ(doc.Find("trace_phases"), nullptr);
}

// ---- Interned metric handles ---------------------------------------------

// The instrumented DPOS/OS-DPOS hot paths record latencies through
// preformatted handles; the contract is zero obs-tagged heap allocations
// per Record. (Interning itself may allocate — that happens once, before
// the measured window.)
TEST(Metrics, HandleRecordDoesNotAllocate) {
  MetricsRegistry registry;
  const MetricsRegistry::TimerHandle timer = registry.TimerRef("dpos/total");
  const MetricsRegistry::HistogramHandle hist =
      registry.HistogramRef("dpos/latency_s");

  MemTracker& mem = MemTracker::Global();
  mem.Enable();
  const int64_t before = mem.stats(MemTag::kObs).allocs;
  for (int i = 0; i < 1000; ++i) {
    registry.Record(timer, 1e-6);
    registry.Record(hist, 1e-6);
    ScopedTimerRef scoped(registry, timer);
  }
  const int64_t after = mem.stats(MemTag::kObs).allocs;
  mem.Disable();
  EXPECT_EQ(after - before, 0);

  // The handles really did land the data.
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.timers.at("dpos/total").count, 2000);
  EXPECT_EQ(snap.histograms.at("dpos/latency_s").count, 1000);
}

// Handles stay valid across Reset(): the registry's storage is node-stable
// and Reset zeroes cells instead of erasing them.
TEST(Metrics, HandlesSurviveReset) {
  MetricsRegistry registry;
  const MetricsRegistry::TimerHandle timer = registry.TimerRef("t");
  registry.Record(timer, 1.0);
  registry.Reset();
  registry.Record(timer, 2.0);
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.timers.at("t").count, 1);
  EXPECT_DOUBLE_EQ(snap.timers.at("t").total_s, 2.0);
}

TEST(Table, NumericColumnsRightAlign) {
  TablePrinter t({"name", "value", "note"});
  t.AddRow({"alpha", "3.5 ms", "ok"});
  t.AddRow({"b", "112.0 ms", "longer note"});
  t.AddRow({"c", "-", "x"});
  const std::string out = t.Render();
  // Numeric column pads on the left; text columns pad on the right.
  EXPECT_NE(out.find("|   3.5 ms |"), std::string::npos);
  EXPECT_NE(out.find("| 112.0 ms |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("| ok          |"), std::string::npos);
}

TEST(Table, MixedColumnStaysLeftAligned) {
  TablePrinter t({"col"});
  t.AddRow({"12.5"});
  t.AddRow({"word"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| 12.5 |"), std::string::npos);
  EXPECT_NE(out.find("| word |"), std::string::npos);
}

}  // namespace
}  // namespace fastt
