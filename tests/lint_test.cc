// Fixture suite for fastt-lint (src/lint). Every rule in the catalog is
// pinned twice: a minimal bad snippet that must fire with the exact
// rule_id, and a minimal clean snippet that must stay silent — so a rule
// can neither silently die (vacuous pass) nor silently widen (false
// positives on sanctioned idioms). Suppression, baseline, config, and
// report-format semantics are pinned here too; CI runs the whole set
// under `ctest -L lint`.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "obs/json.h"

namespace fastt {
namespace lint {
namespace {

// Lints a single in-memory file under the default config.
std::vector<Finding> LintOne(const std::string& path, const std::string& code,
                         const LintConfig& cfg = LintConfig()) {
  return LintSources({{path, code}}, cfg);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const auto& f : findings) ids.push_back(f.rule_id);
  return ids;
}

int CountRule(const std::vector<Finding>& findings, const std::string& id) {
  int n = 0;
  for (const auto& f : findings)
    if (f.rule_id == id) ++n;
  return n;
}

// ---- Rule catalog ----------------------------------------------------------

TEST(LintCatalog, SixRulesWithUniqueStableIds) {
  const auto& catalog = RuleCatalog();
  std::vector<std::string> ids;
  for (const auto& r : catalog) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.summary.empty()) << r.id;
    EXPECT_FALSE(r.rationale.empty()) << r.id;
  }
  std::vector<std::string> expect = {"fastt-D1", "fastt-D2", "fastt-D3",
                                     "fastt-D4", "fastt-S1", "fastt-A1"};
  EXPECT_EQ(ids, expect);
}

TEST(LintCatalog, DeterminismAndSignalRulesAreErrors) {
  for (const auto& r : RuleCatalog()) {
    if (r.id == "fastt-A1") {
      EXPECT_EQ(r.severity, Severity::kWarning) << r.id;
    } else {
      EXPECT_EQ(r.severity, Severity::kError) << r.id;
    }
  }
}

// ---- D1: unordered iteration ----------------------------------------------

TEST(LintD1, RangeForOverUnorderedMapFires) {
  const auto f = LintOne("src/core/x.cc",
                     "#include <unordered_map>\n"
                     "std::unordered_map<int, int> counts;\n"
                     "int Sum() {\n"
                     "  int s = 0;\n"
                     "  for (const auto& kv : counts) s += kv.second;\n"
                     "  return s;\n"
                     "}\n");
  ASSERT_EQ(CountRule(f, "fastt-D1"), 1);
  EXPECT_EQ(f[0].line, 5);
  EXPECT_NE(f[0].message.find("counts"), std::string::npos);
  EXPECT_FALSE(f[0].fix_hint.empty());
}

TEST(LintD1, IteratorBeginOnUnorderedSetFires) {
  const auto f = LintOne("src/core/x.cc",
                     "std::unordered_set<int> seen;\n"
                     "int First() { return *seen.begin(); }\n");
  EXPECT_EQ(CountRule(f, "fastt-D1"), 1);
}

TEST(LintD1, MemberDeclaredInHeaderIteratedInCcFires) {
  // The name table is global across the file set: members live in headers,
  // the offending loop in the matching .cc.
  const auto f = LintSources(
      {{"src/core/m.h",
        "struct M { std::unordered_map<int, double> by_id_; };\n"},
       {"src/core/m.cc",
        "double M::Total() {\n"
        "  double t = 0;\n"
        "  for (const auto& kv : by_id_) t += kv.second;\n"
        "  return t;\n"
        "}\n"}},
      LintConfig());
  EXPECT_EQ(CountRule(f, "fastt-D1"), 1);
}

TEST(LintD1, OrderedMapAndSortedSnapshotStayClean) {
  const auto f = LintOne("src/core/x.cc",
                     "std::map<int, int> counts;\n"
                     "std::unordered_map<int, int> raw;\n"
                     "int Sum() {\n"
                     "  int s = 0;\n"
                     "  for (const auto& kv : counts) s += kv.second;\n"
                     "  int v = raw.at(3);\n"  // lookup, not iteration
                     "  return s + v;\n"
                     "}\n");
  EXPECT_TRUE(f.empty()) << Rules(f).front();
}

TEST(LintD1, OutsideResultPathsIsOutOfScope) {
  const auto f = LintOne("src/obs/x.cc",
                     "std::unordered_map<int, int> counts;\n"
                     "int Sum() {\n"
                     "  int s = 0;\n"
                     "  for (const auto& kv : counts) s += kv.second;\n"
                     "  return s;\n"
                     "}\n");
  EXPECT_EQ(CountRule(f, "fastt-D1"), 0);
}

// ---- D2: wall clocks & libc randomness -------------------------------------

TEST(LintD2, RandFires) {
  const auto f =
      LintOne("src/core/x.cc", "int Pick() { return rand() % 7; }\n");
  ASSERT_EQ(CountRule(f, "fastt-D2"), 1);
  EXPECT_NE(f[0].message.find("Pick"), std::string::npos);
}

TEST(LintD2, RandomDeviceFires) {
  const auto f = LintOne("src/core/x.cc",
                     "unsigned Seed() { return std::random_device{}(); }\n");
  EXPECT_EQ(CountRule(f, "fastt-D2"), 1);
}

TEST(LintD2, TimeNullptrFires) {
  const auto f =
      LintOne("src/core/x.cc", "long Now() { return time(nullptr); }\n");
  EXPECT_EQ(CountRule(f, "fastt-D2"), 1);
}

TEST(LintD2, ClockAliasNowFires) {
  // `using Clock = std::chrono::steady_clock;` then Clock::now() — the
  // alias is tracked, so indirection does not dodge the rule.
  const auto f = LintOne("src/core/x.cc",
                     "using Clock = std::chrono::steady_clock;\n"
                     "double T() { return Clock::now().time_since_epoch()"
                     ".count(); }\n");
  ASSERT_EQ(CountRule(f, "fastt-D2"), 1);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintD2, SeededRngAndMemberTimeStayClean) {
  const auto f = LintOne("src/core/x.cc",
                     "double Draw(Rng& rng) { return rng.Uniform(); }\n"
                     "double T(const Span& s) { return s.time(); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintD2, ConfigAllowlistSuppressesTimerSite) {
  LintConfig cfg;
  std::string err;
  ASSERT_TRUE(LoadLintConfig(
      "# telemetry timer\n"
      "allow fastt-D2 src/core/x.cc Elapsed\n",
      &cfg, &err))
      << err;
  const std::string code =
      "double Elapsed() { return steady_clock::now().t(); }\n"
      "double Other() { return steady_clock::now().t(); }\n";
  const auto f = LintOne("src/core/x.cc", code, cfg);
  ASSERT_EQ(CountRule(f, "fastt-D2"), 1);  // Other still fires
  EXPECT_EQ(f[0].line, 2);
}

// ---- D3: pointer-keyed ordered containers ----------------------------------

TEST(LintD3, PointerKeyedMapFires) {
  const auto f = LintOne("src/core/x.cc",
                     "std::map<Operation*, int> rank_of;\n");
  ASSERT_EQ(CountRule(f, "fastt-D3"), 1);
  EXPECT_NE(f[0].message.find("pointer"), std::string::npos);
}

TEST(LintD3, PointerKeyedSetFires) {
  const auto f =
      LintOne("src/core/x.cc", "std::set<const Node*> visited;\n");
  EXPECT_EQ(CountRule(f, "fastt-D3"), 1);
}

TEST(LintD3, StableIdKeysAndPointerValuesStayClean) {
  const auto f = LintOne("src/core/x.cc",
                     "std::map<OpId, Operation*> op_of;\n"
                     "std::map<std::pair<int, int>, double> cost;\n");
  EXPECT_TRUE(f.empty());
}

// ---- D4: shared accumulation in ParallelFor --------------------------------

TEST(LintD4, CapturedAccumulatorFires) {
  const auto f = LintOne("src/core/x.cc",
                     "void F(size_t n) {\n"
                     "  double sum = 0.0;\n"
                     "  ParallelFor(n, [&](size_t i) {\n"
                     "    sum += Cost(i);\n"
                     "  });\n"
                     "}\n");
  ASSERT_EQ(CountRule(f, "fastt-D4"), 1);
  EXPECT_NE(f[0].message.find("'sum'"), std::string::npos);
  EXPECT_NE(f[0].message.find("'i'"), std::string::npos);
}

TEST(LintD4, CapturedPushBackFires) {
  const auto f = LintOne("src/core/x.cc",
                     "void F(size_t n) {\n"
                     "  std::vector<int> out;\n"
                     "  ParallelFor(n, [&](size_t i) {\n"
                     "    out.push_back(Cost(i));\n"
                     "  });\n"
                     "}\n");
  EXPECT_EQ(CountRule(f, "fastt-D4"), 1);
}

TEST(LintD4, PerSlotWritePlusSerialReduceStaysClean) {
  // The sanctioned idiom from DESIGN.md: each iteration writes only its
  // own slot; the reduction happens serially after the ParallelFor.
  const auto f = LintOne("src/core/x.cc",
                     "void F(size_t n) {\n"
                     "  std::vector<double> slots(n);\n"
                     "  ParallelFor(n, [&](size_t i) {\n"
                     "    double local = Cost(i);\n"
                     "    local += Extra(i);\n"
                     "    slots[i] = local;\n"
                     "  });\n"
                     "  double sum = 0.0;\n"
                     "  for (double s : slots) sum += s;\n"
                     "}\n");
  EXPECT_EQ(CountRule(f, "fastt-D4"), 0);
}

// ---- S1: signal-handler reachability ---------------------------------------

TEST(LintS1, MallocReachableThroughHelperFires) {
  // The walk is interprocedural across files: the handler calls a helper
  // defined in another translation unit, and the helper allocates.
  const auto f = LintSources(
      {{"src/obs/handler.cc",
        "void FasttProfSignalHandler(int sig) { RecordSample(sig); }\n"},
       {"src/obs/record.cc",
        "void RecordSample(int sig) { void* p = malloc(64); Use(p); }\n"}},
      LintConfig());
  ASSERT_EQ(CountRule(f, "fastt-S1"), 1);
  EXPECT_EQ(f[0].file, "src/obs/record.cc");
  EXPECT_NE(f[0].message.find("FasttProfSignalHandler -> RecordSample"),
            std::string::npos);
}

TEST(LintS1, LockViaMacroFires) {
  const auto f = LintOne("src/obs/handler.cc",
                     "void FasttProfSignalHandler(int sig) {\n"
                     "  MutexLock hold(mu);\n"
                     "  g_count = sig;\n"
                     "}\n");
  EXPECT_EQ(CountRule(f, "fastt-S1"), 1);
}

TEST(LintS1, PreallocatedSlotWritesStayClean) {
  // What the real handler does: read the clock, walk its own stack, write
  // a preallocated ring slot. clock_gettime is async-signal-safe.
  const auto f = LintOne("src/obs/handler.cc",
                     "void FasttProfSignalHandler(int sig) {\n"
                     "  timespec ts;\n"
                     "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                     "  g_slot[g_head & kMask] = ts.tv_nsec;\n"
                     "}\n");
  EXPECT_EQ(CountRule(f, "fastt-S1"), 0);
}

TEST(LintS1, MemberCallsAreNotTraversedByName) {
  // `ring.size()` in the handler must not chain into an unrelated class
  // whose method happens to be named `size` and takes a lock (name-level
  // resolution is overload-blind; member calls are checked but not
  // followed).
  const auto f = LintSources(
      {{"src/obs/handler.cc",
        "void FasttProfSignalHandler(int sig) {\n"
        "  if (ring.size() > 0) g_n = sig;\n"
        "}\n"},
       {"src/obs/event_log.cc",
        "size_t EventLog::size() const { MutexLock hold(mu_); return n_; }"
        "\n"}},
      LintConfig());
  EXPECT_EQ(CountRule(f, "fastt-S1"), 0);
}

TEST(LintS1, ExtraHandlerRootFromConfig) {
  LintConfig cfg;
  std::string err;
  ASSERT_TRUE(LoadLintConfig("handler MyHandler\n", &cfg, &err)) << err;
  ASSERT_EQ(cfg.handler_roots.size(), 1u);  // first use replaces defaults
  const auto f = LintOne("src/obs/h.cc",
                     "void MyHandler(int sig) { printf(\"%d\", sig); }\n",
                     cfg);
  EXPECT_EQ(CountRule(f, "fastt-S1"), 1);
}

// ---- A1: untagged containers in memtrack-covered code ----------------------

TEST(LintA1, UntaggedVectorInTaggedPathWarns) {
  const auto f = LintOne("src/sim/exec_sim.cc",
                     "std::vector<double> finish_times;\n");
  ASSERT_EQ(CountRule(f, "fastt-A1"), 1);
  EXPECT_EQ(f[0].severity, Severity::kWarning);
}

TEST(LintA1, TaggedAllocatorAndTaggedAliasStayClean) {
  const auto f = LintOne(
      "src/sim/exec_sim.cc",
      "TaggedVector<double> finish_times;\n"
      "std::vector<double, TaggedAlloc<double>> costs;\n");
  EXPECT_EQ(CountRule(f, "fastt-A1"), 0);
}

TEST(LintA1, UntaggedVectorOutsideTaggedPathsStaysClean) {
  const auto f =
      LintOne("src/baselines/x.cc", "std::vector<double> scratch;\n");
  EXPECT_EQ(CountRule(f, "fastt-A1"), 0);
}

// ---- Suppressions ----------------------------------------------------------

TEST(LintSuppress, SameLineNolintWithRuleId) {
  const auto f = LintOne("src/core/x.cc",
                     "std::unordered_map<int, int> counts;\n"
                     "int Sum() {\n"
                     "  int s = 0;\n"
                     "  for (const auto& kv : counts) s += kv.second;"
                     "  // NOLINT(fastt-D1)\n"
                     "  return s;\n"
                     "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppress, NolintNextLine) {
  const auto f = LintOne("src/core/x.cc",
                     "// NOLINTNEXTLINE(fastt-D3)\n"
                     "std::map<Operation*, int> rank_of;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppress, WrongRuleIdDoesNotSuppress) {
  const auto f = LintOne("src/core/x.cc",
                     "// NOLINTNEXTLINE(fastt-D1)\n"
                     "std::map<Operation*, int> rank_of;\n");
  EXPECT_EQ(CountRule(f, "fastt-D3"), 1);
}

TEST(LintSuppress, BareNolintSuppressesWholeCatalog) {
  const auto f = LintOne("src/core/x.cc",
                     "std::map<Operation*, int> rank_of;  // NOLINT\n");
  EXPECT_TRUE(f.empty());
}

// ---- Baseline --------------------------------------------------------------

TEST(LintBaseline, RoundTripMatchesAndClearsExit) {
  const std::string code =
      "std::unordered_map<int, int> counts;\n"
      "int Sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : counts) s += kv.second;\n"
      "  return s;\n"
      "}\n";
  auto findings = LintOne("src/core/x.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(ExitCodeFor(findings), 1);

  const std::string baseline_json = BaselineToJson(findings);
  std::vector<BaselineEntry> entries;
  std::string err;
  ASSERT_TRUE(LoadBaseline(baseline_json, &entries, &err)) << err;
  ASSERT_EQ(entries.size(), 1u);

  auto again = LintOne("src/core/x.cc", code);
  const BaselineResult r = ApplyBaseline(&again, entries);
  EXPECT_EQ(r.matched, 1u);
  EXPECT_TRUE(r.stale.empty());
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].baselined);
  EXPECT_EQ(ExitCodeFor(again), 0);  // baselined findings do not fail
}

TEST(LintBaseline, FingerprintSurvivesLineShift) {
  // The fingerprint has no line number in it: inserting an unrelated line
  // above the finding must not invalidate the baseline entry.
  const std::string before =
      "std::unordered_map<int, int> counts;\n"
      "int Sum() {\n"
      "  for (const auto& kv : counts) Use(kv);\n"
      "}\n";
  const std::string after =
      "std::unordered_map<int, int> counts;\n"
      "// an unrelated comment pushing everything down\n"
      "int other_decl = 0;\n"
      "int Sum() {\n"
      "  for (const auto& kv : counts) Use(kv);\n"
      "}\n";
  auto f1 = LintOne("src/core/x.cc", before);
  auto f2 = LintOne("src/core/x.cc", after);
  ASSERT_EQ(f1.size(), 1u);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_NE(f1[0].line, f2[0].line);
  EXPECT_EQ(f1[0].fingerprint, f2[0].fingerprint);
}

TEST(LintBaseline, StaleEntryIsReported) {
  std::vector<BaselineEntry> entries = {
      {"fastt-D1", "src/core/gone.cc", 0xdeadbeefULL}};
  auto findings = LintOne("src/core/x.cc", "int x = 0;\n");
  const BaselineResult r = ApplyBaseline(&findings, entries);
  EXPECT_EQ(r.matched, 0u);
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].file, "src/core/gone.cc");
  // Stale entries surface as a warning in the text report.
  const std::string text = FindingsToText(findings, &r);
  EXPECT_NE(text.find("stale"), std::string::npos);
}

// ---- Reports ---------------------------------------------------------------

TEST(LintReport, JsonIsValidAndCarriesSchema) {
  auto findings = LintOne("src/core/x.cc",
                      "std::map<Operation*, int> rank_of;\n");
  const std::string text = FindingsToJson(findings, nullptr, 1);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonParse(text, &doc, &err)) << err;
  EXPECT_EQ(doc.Find("schema")->StringOr(""), "fastt-lint/1");
  const JsonValue* arr = doc.Find("findings");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 1u);
  EXPECT_EQ(arr->items[0].Find("rule")->StringOr(""), "fastt-D3");
  EXPECT_EQ(arr->items[0].Find("severity")->StringOr(""), "error");
}

TEST(LintReport, SarifIsValidAndDeclaresCatalog) {
  auto findings = LintOne("src/core/x.cc",
                      "std::map<Operation*, int> rank_of;\n");
  const std::string text = FindingsToSarif(findings);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonParse(text, &doc, &err)) << err;
  EXPECT_EQ(doc.Find("version")->StringOr(""), "2.1.0");
  const JsonValue* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 1u);
  const JsonValue* driver = runs->items[0].Find("tool")->Find("driver");
  EXPECT_EQ(driver->Find("name")->StringOr(""), "fastt-lint");
  EXPECT_EQ(driver->Find("rules")->items.size(), RuleCatalog().size());
  const JsonValue* results = runs->items[0].Find("results");
  ASSERT_EQ(results->items.size(), 1u);
  EXPECT_EQ(results->items[0].Find("ruleId")->StringOr(""), "fastt-D3");
  EXPECT_EQ(results->items[0].Find("level")->StringOr(""), "error");
  const JsonValue* loc = results->items[0]
                             .Find("locations")
                             ->items[0]
                             .Find("physicalLocation");
  EXPECT_EQ(loc->Find("artifactLocation")->Find("uri")->StringOr(""),
            "src/core/x.cc");
  EXPECT_EQ(loc->Find("region")->Find("startLine")->IntOr(0), 1);
}

TEST(LintReport, BaselinedFindingsLeaveSarifResults) {
  auto findings = LintOne("src/core/x.cc",
                      "std::map<Operation*, int> rank_of;\n");
  findings[0].baselined = true;
  const std::string text = FindingsToSarif(findings);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonParse(text, &doc, &err)) << err;
  EXPECT_TRUE(doc.Find("runs")->items[0].Find("results")->items.empty());
}

TEST(LintReport, ExitCodeIgnoresWarnings) {
  auto warn_only = LintOne("src/sim/exec_sim.cc",
                       "std::vector<double> finish_times;\n");
  ASSERT_EQ(CountRule(warn_only, "fastt-A1"), 1);
  EXPECT_EQ(ExitCodeFor(warn_only), 0);
}

// ---- Config parsing --------------------------------------------------------

TEST(LintConfigParse, MalformedAllowLineFailsWithLineNumber) {
  LintConfig cfg;
  std::string err;
  EXPECT_FALSE(LoadLintConfig("allow fastt-D2\n", &cfg, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(LintConfigParse, PathDirectivesReplaceDefaultsOnFirstUse) {
  LintConfig cfg;
  std::string err;
  ASSERT_TRUE(LoadLintConfig("result-path src/zebra/\n"
                             "result-path src/quagga/\n"
                             "tagged-path src/zebra/z.cc\n",
                             &cfg, &err))
      << err;
  ASSERT_EQ(cfg.result_paths.size(), 2u);
  EXPECT_EQ(cfg.result_paths[0], "src/zebra/");
  EXPECT_EQ(cfg.tagged_paths, std::vector<std::string>{"src/zebra/z.cc"});
}

}  // namespace
}  // namespace lint
}  // namespace fastt
