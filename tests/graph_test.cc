#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dot.h"
#include "graph/graph.h"
#include "graph/shape.h"

namespace fastt {
namespace {

Operation MakeOp(const std::string& name, double flops = 1.0,
                 TensorShape shape = TensorShape{4}) {
  Operation op;
  op.name = name;
  op.type = OpType::kRelu;
  op.output_shape = std::move(shape);
  op.flops = flops;
  return op;
}

TEST(Shape, DTypeSizes) {
  EXPECT_EQ(DTypeSize(DType::kF32), 4);
  EXPECT_EQ(DTypeSize(DType::kF16), 2);
  EXPECT_EQ(DTypeSize(DType::kI32), 4);
  EXPECT_EQ(DTypeSize(DType::kI64), 8);
}

TEST(Shape, Elements) {
  EXPECT_EQ(TensorShape({2, 3, 4}).num_elements(), 24);
  EXPECT_EQ(TensorShape{}.num_elements(), 1);  // scalar
  EXPECT_EQ(TensorShape({5}).ByteSize(DType::kF32), 20);
}

TEST(Shape, WithDim) {
  const TensorShape s({2, 3});
  EXPECT_EQ(s.WithDim(1, 7).dim(1), 7);
  EXPECT_EQ(s.dim(1), 3);  // original untouched
}

TEST(Shape, ToString) {
  EXPECT_EQ(TensorShape({64, 224, 224, 3}).ToString(), "[64,224,224,3]");
  EXPECT_EQ(TensorShape{}.ToString(), "[]");
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(TensorShape({2, -1}), std::logic_error);
}

TEST(Graph, AddOpAssignsIds) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(g.num_live_ops(), 2);
  EXPECT_EQ(g.op(a).name, "a");
}

TEST(Graph, DuplicateNamesRejected) {
  Graph g;
  g.AddOp(MakeOp("a"));
  EXPECT_THROW(g.AddOp(MakeOp("a")), std::logic_error);
}

TEST(Graph, EdgeDefaultsToProducerBytes) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a", 1.0, TensorShape{10}));  // 40 bytes f32
  const OpId b = g.AddOp(MakeOp("b"));
  const EdgeId e = g.AddEdge(a, b);
  EXPECT_EQ(g.edge(e).bytes, 40);
  const EdgeId e2 = g.AddEdge(a, b, 8);
  EXPECT_EQ(g.edge(e2).bytes, 8);
}

TEST(Graph, SelfEdgeRejected) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  EXPECT_THROW(g.AddEdge(a, a), std::logic_error);
}

TEST(Graph, PredsSuccsDeduplicate) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  g.AddEdge(a, b);
  g.AddEdge(a, b);  // second tensor between the same pair
  EXPECT_EQ(g.Succs(a).size(), 1u);
  EXPECT_EQ(g.Preds(b).size(), 1u);
  EXPECT_EQ(g.num_live_edges(), 2);
}

TEST(Graph, RemoveOpTombstones) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  const OpId c = g.AddOp(MakeOp("c"));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.RemoveOp(b);
  EXPECT_EQ(g.num_live_ops(), 2);
  EXPECT_TRUE(g.op(b).dead);
  EXPECT_TRUE(g.Succs(a).empty());
  EXPECT_TRUE(g.Preds(c).empty());
  EXPECT_EQ(g.FindOp("b"), kInvalidOp);
  // Name becomes reusable after removal.
  EXPECT_NO_THROW(g.AddOp(MakeOp("b")));
}

TEST(Graph, TopoOrderRespectsEdges) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  const OpId c = g.AddOp(MakeOp("c"));
  g.AddEdge(b, a);  // b before a
  g.AddEdge(a, c);
  const auto order = g.TopoOrder();
  auto pos = [&](OpId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(b), pos(a));
  EXPECT_LT(pos(a), pos(c));
}

TEST(Graph, CycleDetection) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  g.AddEdge(a, b);
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(b, a);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_THROW(g.TopoOrder(), std::logic_error);
}

TEST(Graph, EntryAndExitOps) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  const OpId c = g.AddOp(MakeOp("c"));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  EXPECT_EQ(g.EntryOps(), std::vector<OpId>{a});
  EXPECT_EQ(g.ExitOps(), std::vector<OpId>{c});
  g.RemoveOp(c);
  EXPECT_EQ(g.ExitOps(), std::vector<OpId>{b});
}

TEST(Graph, LongestPathFromExit) {
  // a(1) -> b(2) -> d(4);  a -> c(10) -> d.  Edge weight = bytes.
  Graph g;
  const OpId a = g.AddOp(MakeOp("a", 1.0));
  const OpId b = g.AddOp(MakeOp("b", 2.0));
  const OpId c = g.AddOp(MakeOp("c", 10.0));
  const OpId d = g.AddOp(MakeOp("d", 4.0));
  g.AddEdge(a, b, 0);
  g.AddEdge(a, c, 0);
  g.AddEdge(b, d, 0);
  g.AddEdge(c, d, 0);
  const auto v = g.LongestPathFromExit(
      [](const Operation& op) { return op.flops; },
      [](const Edge&) { return 0.0; });
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(d)], 4.0);
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(c)], 14.0);
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(b)], 6.0);
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(a)], 15.0);  // via c
}

TEST(Graph, LongestPathUsesEdgeWeights) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a", 1.0));
  const OpId b = g.AddOp(MakeOp("b", 1.0));
  g.AddEdge(a, b, 100);
  const auto v = g.LongestPathFromExit(
      [](const Operation& op) { return op.flops; },
      [](const Edge& e) { return static_cast<double>(e.bytes); });
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(a)], 102.0);
}

TEST(Graph, TotalsSkipDeadOps) {
  Graph g;
  const OpId a = g.AddOp(MakeOp("a", 5.0));
  Operation weighted = MakeOp("w", 7.0);
  weighted.param_bytes = 128;
  g.AddOp(std::move(weighted));
  EXPECT_DOUBLE_EQ(g.TotalFlops(), 12.0);
  EXPECT_EQ(g.TotalParamBytes(), 128);
  g.RemoveOp(a);
  EXPECT_DOUBLE_EQ(g.TotalFlops(), 7.0);
}

TEST(Graph, ValidatePassesOnWellFormed) {
  Graph g("test");
  const OpId a = g.AddOp(MakeOp("a"));
  const OpId b = g.AddOp(MakeOp("b"));
  g.AddEdge(a, b);
  EXPECT_NO_THROW(g.Validate());
}

TEST(Dot, ExportsNodesAndEdges) {
  Graph g("viz");
  const OpId a = g.AddOp(MakeOp("alpha"));
  const OpId b = g.AddOp(MakeOp("beta"));
  g.AddEdge(a, b);
  const std::string dot = ExportDot(g, {0, 1});
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(OpTypeTraits, ParallelizableDims) {
  const auto conv = ParallelizableDims(OpType::kConv2D);
  EXPECT_EQ(conv.size(), 2u);
  const auto bn = ParallelizableDims(OpType::kBatchNorm);
  EXPECT_TRUE(bn.empty());  // the paper's explicit non-splittable example
  const auto mm = ParallelizableDims(OpType::kMatMul);
  EXPECT_EQ(mm.size(), 2u);
}

TEST(OpTypeTraits, ComputeBoundAndGradFlags) {
  EXPECT_TRUE(IsComputeBound(OpType::kMatMul));
  EXPECT_FALSE(IsComputeBound(OpType::kRelu));
  EXPECT_TRUE(IsGradOp(OpType::kConv2DBackpropFilter));
  EXPECT_FALSE(IsGradOp(OpType::kConv2D));
  EXPECT_FALSE(IsMathOp(OpType::kVariable));
  EXPECT_TRUE(IsMathOp(OpType::kConv2D));
}

}  // namespace
}  // namespace fastt
