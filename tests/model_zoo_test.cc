#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "sim/cluster.h"
#include "sim/exec_sim.h"
#include "util/strings.h"

namespace fastt {
namespace {

TEST(ModelZoo, HasAllNinePaperModels) {
  const auto& zoo = ModelZoo();
  ASSERT_EQ(zoo.size(), 9u);
  for (const char* name :
       {"inception_v3", "vgg19", "resnet200", "lenet", "alexnet", "gnmt",
        "rnnlm", "transformer", "bert_large"}) {
    EXPECT_NO_THROW(FindModel(name)) << name;
  }
  EXPECT_THROW(FindModel("nope"), std::logic_error);
}

TEST(ModelZoo, PaperBatchSizes) {
  EXPECT_EQ(FindModel("vgg19").strong_batch, 64);
  EXPECT_EQ(FindModel("resnet200").strong_batch, 32);
  EXPECT_EQ(FindModel("lenet").strong_batch, 256);
  EXPECT_EQ(FindModel("transformer").strong_batch, 4096);
  EXPECT_EQ(FindModel("bert_large").strong_batch, 16);
}

class ZooModel : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooModel, BuildsValidTrainingGraph) {
  const ModelSpec& spec = FindModel(GetParam());
  const Graph g = BuildSingle(spec, spec.strong_batch);
  EXPECT_GT(g.num_live_ops(), 20);
  EXPECT_GT(g.TotalFlops(), 1e9);
  EXPECT_TRUE(g.IsAcyclic());
  // Training graph: has variables, gradients and optimizer updates.
  int vars = 0, applies = 0, grads = 0;
  for (OpId id : g.LiveOps()) {
    const auto& op = g.op(id);
    if (op.type == OpType::kVariable) ++vars;
    if (op.type == OpType::kApplyGradient) ++applies;
    if (IsGradOp(op.type)) ++grads;
  }
  EXPECT_GT(vars, 0);
  EXPECT_EQ(vars, applies);  // one optimizer update per parameter
  EXPECT_GT(grads, 0);
}

TEST_P(ZooModel, RunsOnSimulatedGpu) {
  const ModelSpec& spec = FindModel(GetParam());
  const Graph g = BuildSingle(spec, spec.strong_batch);
  const Cluster c = Cluster::SingleServer(1);
  const SimResult r =
      Simulate(g, std::vector<DeviceId>(g.num_slots(), 0), c);
  EXPECT_GT(r.makespan, 1e-4);
  EXPECT_LT(r.makespan, 10.0);
  // Table 1's strong-scaling batches were chosen to fit one GPU.
  EXPECT_FALSE(r.oom) << GetParam();
}

TEST_P(ZooModel, LargerBatchIsSlower) {
  const ModelSpec& spec = FindModel(GetParam());
  const Cluster c = Cluster::SingleServer(1);
  const Graph small = BuildSingle(spec, spec.strong_batch);
  const Graph big = BuildSingle(spec, spec.strong_batch * 2);
  SimOptions options;
  options.track_memory = false;  // 2x batch may exceed memory by design
  const double t_small =
      Simulate(small, std::vector<DeviceId>(small.num_slots(), 0), c,
               options)
          .makespan;
  const double t_big =
      Simulate(big, std::vector<DeviceId>(big.num_slots(), 0), c, options)
          .makespan;
  EXPECT_GT(t_big, t_small);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModel,
                         ::testing::Values("inception_v3", "vgg19",
                                           "resnet200", "lenet", "alexnet",
                                           "gnmt", "rnnlm", "transformer",
                                           "bert_large"));

TEST(ModelZoo, VggLayerNamesMatchTable5) {
  const Graph g = BuildSingle(FindModel("vgg19"), 64);
  for (const char* name : {"conv1_1", "conv1_2", "relu1_2", "pool1", "fc6"})
    EXPECT_NE(g.FindOp(name), kInvalidOp) << name;
  // The backprop ops Table 5 reports exist too.
  EXPECT_NE(g.FindOp("conv1_2/wgrad"), kInvalidOp);
}

TEST(ModelZoo, VggParameterBudget) {
  // VGG-19 has ~143M parameters (~548 MB fp32 + biases).
  const Graph g = BuildSingle(FindModel("vgg19"), 64);
  int64_t weights = 0;
  for (OpId id : g.LiveOps())
    if (g.op(id).type == OpType::kVariable) weights += g.op(id).output_bytes();
  EXPECT_NEAR(static_cast<double>(weights) / (1 << 20), 548.0, 40.0);
}

TEST(ModelZoo, BertParameterBudget) {
  // BERT-large has ~340M parameters.
  const Graph g = BuildSingle(FindModel("bert_large"), 16);
  int64_t weights = 0;
  for (OpId id : g.LiveOps())
    if (g.op(id).type == OpType::kVariable) weights += g.op(id).output_bytes();
  EXPECT_NEAR(static_cast<double>(weights) / (1 << 20), 1300.0, 200.0);
}

TEST(ModelZoo, BertOomThresholds) {
  // Table 3's single-GPU feasibility: batch 16 trains, batch 32 OOMs.
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster c = Cluster::SingleServer(1);
  const Graph b16 = BuildSingle(spec, 16);
  EXPECT_FALSE(
      Simulate(b16, std::vector<DeviceId>(b16.num_slots(), 0), c).oom);
  const Graph b32 = BuildSingle(spec, 32);
  EXPECT_TRUE(
      Simulate(b32, std::vector<DeviceId>(b32.num_slots(), 0), c).oom);
}

TEST(ModelZoo, TransformerFitsAtFullTokenBatch) {
  // The paper trains Transformer at batch 4096 on one GPU without OOM.
  const ModelSpec& spec = FindModel("transformer");
  const Graph g = BuildSingle(spec, 4096);
  const Cluster c = Cluster::SingleServer(1);
  EXPECT_FALSE(Simulate(g, std::vector<DeviceId>(g.num_slots(), 0), c).oom);
}

TEST(ModelZoo, ResNetDepthIsRight) {
  // ResNet-200: 66 bottleneck blocks, 3 convs each + stem + projections.
  const Graph g = BuildSingle(FindModel("resnet200"), 32);
  int convs = 0;
  for (OpId id : g.LiveOps())
    if (g.op(id).type == OpType::kConv2D) ++convs;
  EXPECT_NEAR(convs, 66 * 3 + 1 + 4, 4);
}

TEST(ModelZoo, LstmModelsHaveSequentialCells) {
  const Graph g = BuildSingle(FindModel("rnnlm"), 64);
  int cells = 0;
  for (OpId id : g.LiveOps())
    if (g.op(id).type == OpType::kLSTMCell) ++cells;
  EXPECT_EQ(cells, 2 * 35);  // 2 layers x 35 timesteps
}

TEST(ModelZoo, AttentionModelsAreMatmulDominated) {
  for (const char* name : {"transformer", "bert_large"}) {
    const Graph g = BuildSingle(FindModel(name), 16);
    double matmul_flops = 0.0;
    for (OpId id : g.LiveOps())
      if (g.op(id).type == OpType::kMatMul) matmul_flops += g.op(id).flops;
    EXPECT_GT(matmul_flops / g.TotalFlops(), 0.9) << name;
  }
}

TEST(ModelZoo, BuildIntoPrefixedNamespace) {
  Graph g("two");
  FindModel("lenet").build(g, "rep0", 8);
  FindModel("lenet").build(g, "rep1", 8);
  g.Validate();
  EXPECT_NE(g.FindOp("rep0/conv1"), kInvalidOp);
  EXPECT_NE(g.FindOp("rep1/conv1"), kInvalidOp);
}

}  // namespace
}  // namespace fastt
