#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"

namespace fastt {
namespace {

// Compute op with a deterministic 1 ms duration on a V100-like device
// (flops chosen so flops / (peak * eff) = 1 ms, minus launch overhead).
Operation ComputeOp(const std::string& name, double millis = 1.0,
                    int64_t out_bytes = 4096) {
  Operation op;
  op.name = name;
  op.type = OpType::kMatMul;
  op.output_shape = TensorShape{out_bytes / 4};
  op.flops = (millis * 1e-3 - 4e-6) * 15.7e12 * 0.70;
  op.bytes_touched = 0;
  return op;
}

TEST(Device, V100Defaults) {
  const Device d = MakeV100(0, 0, 0);
  EXPECT_EQ(d.memory_bytes, int64_t{16} * 1024 * 1024 * 1024);
  EXPECT_LT(d.usable_bytes(), d.memory_bytes);
  EXPECT_GT(d.peak_flops, 1e13);
}

TEST(Device, GroundTruthRoofline) {
  const Device d = MakeV100(0, 0, 0);
  Operation op = ComputeOp("x", 2.0);
  EXPECT_NEAR(GroundTruthDuration(op, d), 2e-3, 1e-5);
  // Memory-bound term takes over for byte-heavy ops.
  op.bytes_touched = int64_t{90} * 1000 * 1000 * 1000;  // 100 ms at 900GB/s
  EXPECT_GT(GroundTruthDuration(op, d), 0.09);
}

TEST(Device, EfficiencyOverride) {
  const Device d = MakeV100(0, 0, 0);
  Operation op = ComputeOp("x", 1.0);
  const double base = GroundTruthDuration(op, d);
  op.efficiency_override = 0.35;  // half of matmul's default 0.70
  EXPECT_NEAR(GroundTruthDuration(op, d), 2.0 * base, 1e-5);
}

TEST(Device, SpeedFactorScales) {
  Device d = MakeV100(0, 0, 0);
  Operation op = ComputeOp("x", 1.0);
  const double base = GroundTruthDuration(op, d);
  d.speed_factor = 2.0;
  EXPECT_NEAR(GroundTruthDuration(op, d), base / 2.0, 1e-9);
}

TEST(Cluster, Topologies) {
  const Cluster single = Cluster::SingleServer(4);
  EXPECT_EQ(single.num_devices(), 4);
  EXPECT_EQ(single.device(3).server, 0);

  const Cluster multi = Cluster::MultiServer(2, 4);
  EXPECT_EQ(multi.num_devices(), 8);
  EXPECT_EQ(multi.device(3).server, 0);
  EXPECT_EQ(multi.device(4).server, 1);
}

TEST(Cluster, LinkSelection) {
  const Cluster multi = Cluster::MultiServer(2, 2);
  const Link intra = multi.LinkBetween(0, 1);
  const Link inter = multi.LinkBetween(1, 2);
  EXPECT_GT(intra.bandwidth, inter.bandwidth);
  EXPECT_LT(intra.latency, inter.latency);
  EXPECT_EQ(multi.SlowestLink().bandwidth, inter.bandwidth);
  EXPECT_EQ(Cluster::SingleServer(2).SlowestLink().bandwidth,
            intra.bandwidth);
}

TEST(Cluster, TransferTime) {
  const Link link{1e9, 1e-5};
  EXPECT_DOUBLE_EQ(link.TransferTime(1000000), 1e-5 + 1e-3);
}

TEST(Simulate, SerialChainOnOneDevice) {
  Graph g;
  const OpId a = g.AddOp(ComputeOp("a", 1.0));
  const OpId b = g.AddOp(ComputeOp("b", 2.0));
  g.AddEdge(a, b);
  const Cluster c = Cluster::SingleServer(1);
  const SimResult r = Simulate(g, {0, 0}, c);
  EXPECT_NEAR(r.makespan, 3e-3, 1e-5);
  EXPECT_NEAR(r.device_busy_s[0], 3e-3, 1e-5);
  EXPECT_TRUE(r.transfers.empty());
  EXPECT_NEAR(r.op_records[static_cast<size_t>(b)].start, 1e-3, 1e-5);
}

TEST(Simulate, IndependentOpsRunInParallelOnTwoDevices) {
  Graph g;
  g.AddOp(ComputeOp("a", 5.0));
  g.AddOp(ComputeOp("b", 5.0));
  const Cluster c = Cluster::SingleServer(2);
  EXPECT_NEAR(Simulate(g, {0, 1}, c).makespan, 5e-3, 1e-5);
  EXPECT_NEAR(Simulate(g, {0, 0}, c).makespan, 10e-3, 1e-5);
}

TEST(Simulate, CrossDeviceTransferAddsLinkTime) {
  Graph g;
  const OpId a = g.AddOp(ComputeOp("a", 1.0, 9 * 1000 * 1000));  // 9 MB out
  const OpId b = g.AddOp(ComputeOp("b", 1.0));
  g.AddEdge(a, b);
  const Cluster c = Cluster::SingleServer(2);
  const SimResult r = Simulate(g, {0, 1}, c);
  const double expected_transfer =
      c.params().nvlink_latency + 9e6 / c.params().nvlink_bandwidth;
  EXPECT_NEAR(r.makespan, 2e-3 + expected_transfer, 1e-5);
  ASSERT_EQ(r.transfers.size(), 1u);
  EXPECT_NEAR(r.transfers[0].duration(), expected_transfer, 1e-7);
  EXPECT_NEAR(r.total_memcpy_s, expected_transfer, 1e-7);
}

TEST(Simulate, SharedEgressSerializes) {
  // One producer feeding kCopyEnginesPerDirection + 1 remote consumers: the
  // last transfer must wait for an engine.
  Graph g;
  const int64_t mb = 1000 * 1000;
  const OpId a = g.AddOp(ComputeOp("a", 1.0, 45 * mb));
  std::vector<OpId> consumers;
  std::vector<DeviceId> placement{0};
  const int n = static_cast<int>(SimOptions::kCopyEnginesPerDirection) + 1;
  Graph g2 = g;  // placeholder to silence unused warning paths
  (void)g2;
  for (int i = 0; i < n; ++i) {
    Operation op = ComputeOp("c" + std::to_string(i), 1.0);
    const OpId id = g.AddOp(std::move(op));
    // Distinct artificial producers so dedup does not collapse transfers:
    // connect a -> mid_i -> c_i with mid on device 0.
    Operation mid = ComputeOp("m" + std::to_string(i), 0.1, 45 * mb);
    const OpId mid_id = g.AddOp(std::move(mid));
    g.AddEdge(a, mid_id);
    g.AddEdge(mid_id, id);
    placement.push_back(static_cast<DeviceId>(i + 1));  // consumer
    placement.push_back(0);                             // mid
    consumers.push_back(id);
  }
  const Cluster c = Cluster::SingleServer(n + 1);
  const SimResult r = Simulate(g, placement, c);
  // Each 45 MB transfer takes 5 ms at 9 GB/s; with 2 engines, 3 transfers
  // need two rounds: the last arrival is >= 2 * 5 ms after its request.
  double earliest = 1e9, latest = 0;
  for (const auto& t : r.transfers) {
    earliest = std::min(earliest, t.arrival);
    latest = std::max(latest, t.arrival);
  }
  EXPECT_GT(latest - earliest, 4e-3);
}

TEST(Simulate, RendezvousDedupSendsOncePerDevice) {
  // One producer, three consumers on the same remote device: one transfer.
  Graph g;
  const OpId a = g.AddOp(ComputeOp("a", 1.0, 1000000));
  std::vector<DeviceId> placement{0};
  for (int i = 0; i < 3; ++i) {
    const OpId ci = g.AddOp(ComputeOp("c" + std::to_string(i), 1.0));
    g.AddEdge(a, ci);
    placement.push_back(1);
  }
  const Cluster c = Cluster::SingleServer(2);
  const SimResult r = Simulate(g, placement, c);
  EXPECT_EQ(r.transfers.size(), 1u);
}

TEST(Simulate, PriorityDispatchReordersReadyOps) {
  // Two ready ops on one device; priorities flip their FIFO order.
  Graph g;
  const OpId a = g.AddOp(ComputeOp("a", 2.0));
  const OpId b = g.AddOp(ComputeOp("b", 2.0));
  const Cluster c = Cluster::SingleServer(1);

  SimOptions fifo;
  const SimResult rf = Simulate(g, {0, 0}, c, fifo);
  EXPECT_LT(rf.op_records[static_cast<size_t>(a)].start,
            rf.op_records[static_cast<size_t>(b)].start);

  SimOptions prio;
  prio.dispatch = DispatchMode::kPriority;
  prio.priorities = {1, 0};  // b first
  const SimResult rp = Simulate(g, {0, 0}, c, prio);
  EXPECT_GT(rp.op_records[static_cast<size_t>(a)].start,
            rp.op_records[static_cast<size_t>(b)].start);
}

TEST(Simulate, PriorityRequiresPrioritiesVector) {
  Graph g;
  g.AddOp(ComputeOp("a", 1.0));
  SimOptions options;
  options.dispatch = DispatchMode::kPriority;
  EXPECT_THROW(Simulate(g, {0}, Cluster::SingleServer(1), options),
               std::logic_error);
}

TEST(Simulate, RandomDispatchDeterministicPerSeed) {
  Graph g;
  for (int i = 0; i < 10; ++i) g.AddOp(ComputeOp("op" + std::to_string(i)));
  const std::vector<DeviceId> placement(10, 0);
  const Cluster c = Cluster::SingleServer(1);
  SimOptions o1;
  o1.dispatch = DispatchMode::kRandom;
  o1.seed = 5;
  const SimResult r1 = Simulate(g, placement, c, o1);
  const SimResult r2 = Simulate(g, placement, c, o1);
  for (size_t i = 0; i < r1.op_records.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.op_records[i].start, r2.op_records[i].start);
}

TEST(Simulate, NoiseIsReproducibleAndBounded) {
  Graph g;
  const OpId a = g.AddOp(ComputeOp("a", 10.0));
  const Cluster c = Cluster::SingleServer(1);
  SimOptions o;
  o.noise_cv = 0.05;
  o.seed = 3;
  const double t1 = Simulate(g, {0}, c, o).makespan;
  const double t2 = Simulate(g, {0}, c, o).makespan;
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_NEAR(t1, 10e-3, 3e-3);
  o.seed = 4;
  EXPECT_NE(Simulate(g, {0}, c, o).makespan, t1);
  (void)a;
}

TEST(Simulate, ParamsAreResident) {
  Graph g;
  Operation op = ComputeOp("w", 1.0);
  op.param_bytes = int64_t{5} * 1024 * 1024 * 1024;
  g.AddOp(std::move(op));
  const Cluster c = Cluster::SingleServer(1);
  const SimResult r = Simulate(g, {0}, c);
  EXPECT_GE(r.peak_memory[0], op.param_bytes);
  EXPECT_FALSE(r.oom);
}

TEST(Simulate, OomDetected) {
  Graph g;
  Operation op = ComputeOp("w", 1.0);
  op.param_bytes = int64_t{20} * 1024 * 1024 * 1024;  // > usable 16 GB
  g.AddOp(std::move(op));
  const SimResult r = Simulate(g, {0}, Cluster::SingleServer(1));
  EXPECT_TRUE(r.oom);
  ASSERT_EQ(r.oom_devices.size(), 1u);
  EXPECT_EQ(r.oom_devices[0], 0);
}

TEST(Simulate, ActivationFreedAfterLastConsumer) {
  // a's big output is consumed by b, then dead; c's allocation afterwards
  // must not stack on top of it.
  Graph g;
  const int64_t gb = int64_t{1} << 30;
  const OpId a = g.AddOp(ComputeOp("a", 1.0, 3 * gb));
  Operation bop = ComputeOp("b", 1.0, 3 * gb);
  const OpId b = g.AddOp(std::move(bop));
  Operation cop = ComputeOp("c", 1.0, 3 * gb);
  const OpId c_id = g.AddOp(std::move(cop));
  g.AddEdge(a, b, 64);
  g.AddEdge(b, c_id, 64);
  const SimResult r = Simulate(g, {0, 0, 0}, Cluster::SingleServer(1));
  // Never freeing would peak at 9 GB; release-after-last-consumer keeps it
  // near 6 GB (two buffers overlap momentarily at each handoff).
  EXPECT_LT(r.peak_memory[0], static_cast<int64_t>(6.5 * gb));
  EXPECT_FALSE(r.oom);
}

TEST(Simulate, TrackMemoryOffSkipsAccounting) {
  Graph g;
  Operation op = ComputeOp("w", 1.0);
  op.param_bytes = int64_t{20} * 1024 * 1024 * 1024;
  g.AddOp(std::move(op));
  SimOptions options;
  options.track_memory = false;
  const SimResult r = Simulate(g, {0}, Cluster::SingleServer(1), options);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.peak_memory[0], 0);
}

TEST(Simulate, InvalidPlacementRejected) {
  Graph g;
  g.AddOp(ComputeOp("a", 1.0));
  EXPECT_THROW(Simulate(g, {5}, Cluster::SingleServer(2)), std::logic_error);
  EXPECT_THROW(Simulate(g, {}, Cluster::SingleServer(2)), std::logic_error);
}

TEST(Simulate, MakespanAtLeastCriticalPathCompute) {
  Graph g;
  OpId prev = kInvalidOp;
  double total = 0.0;
  for (int i = 0; i < 5; ++i) {
    const OpId id = g.AddOp(ComputeOp("op" + std::to_string(i), 1.0 + i));
    if (prev != kInvalidOp) g.AddEdge(prev, id, 64);
    prev = id;
    total += (1.0 + i) * 1e-3;
  }
  const SimResult r =
      Simulate(g, std::vector<DeviceId>(5, 0), Cluster::SingleServer(2));
  EXPECT_GE(r.makespan, total - 1e-6);
}

TEST(Profiler, ExtractsOpAndCommRecords) {
  Graph g;
  Operation a = ComputeOp("a", 1.0, 1000000);
  a.cost_key = "shared_key";
  const OpId ia = g.AddOp(std::move(a));
  const OpId ib = g.AddOp(ComputeOp("b", 2.0));
  g.AddEdge(ia, ib);
  const Cluster c = Cluster::SingleServer(2);
  const SimResult r = Simulate(g, {0, 1}, c);
  const RunProfile p = ExtractProfile(g, r);
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[0].cost_key,
            g.op(p.ops[0].device == 0 ? ia : ib).CostKey());
  ASSERT_EQ(p.transfers.size(), 1u);
  EXPECT_EQ(p.transfers[0].src, 0);
  EXPECT_EQ(p.transfers[0].dst, 1);
  EXPECT_EQ(p.transfers[0].bytes, 1000000);
  EXPECT_GT(p.transfers[0].duration_s, 0.0);
  EXPECT_DOUBLE_EQ(p.iteration_s, r.makespan);
}

}  // namespace
}  // namespace fastt
