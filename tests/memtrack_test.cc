// Tagged heap accounting: MemTracker counters, MemTagScope ambient tags,
// the TaggedAlloc STL adaptor (including allocator propagation across
// container copy/move/swap), and the end-to-end pin that building a zoo
// model and simulating it actually charges the graph and sim/events tags.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "models/model_zoo.h"
#include "sim/cluster.h"
#include "sim/exec_sim.h"
#include "util/memtrack.h"

namespace fastt {
namespace {

// The tracker is process-global; each test fixture turns it on (zeroing) and
// off so tests stay order-independent.
class MemTrackTest : public ::testing::Test {
 protected:
  void SetUp() override { MemTracker::Global().Enable(); }
  void TearDown() override { MemTracker::Global().Disable(); }
};

TEST_F(MemTrackTest, TagNamesAreStable) {
  EXPECT_STREQ(MemTagName(MemTag::kUntagged), "untagged");
  EXPECT_STREQ(MemTagName(MemTag::kGraph), "graph");
  EXPECT_STREQ(MemTagName(MemTag::kSimEvents), "sim/events");
  EXPECT_STREQ(MemTagName(MemTag::kCost), "cost");
  EXPECT_STREQ(MemTagName(MemTag::kDpos), "dpos");
  EXPECT_STREQ(MemTagName(MemTag::kObs), "obs");
}

TEST_F(MemTrackTest, ExplicitTagChargesThatTag) {
  {
    TaggedVector<int64_t> v{TaggedAlloc<int64_t>(MemTag::kCost)};
    v.resize(100);
    const MemTagStats s = MemTracker::Global().stats(MemTag::kCost);
    EXPECT_GE(s.live_bytes, 800);
    EXPECT_GE(s.allocs, 1);
    EXPECT_EQ(s.frees, 0);
  }
  // Destruction returns every byte: live goes to zero, peak stays.
  const MemTagStats s = MemTracker::Global().stats(MemTag::kCost);
  EXPECT_EQ(s.live_bytes, 0);
  EXPECT_GE(s.peak_bytes, 800);
  EXPECT_EQ(s.allocs, s.frees);
}

TEST_F(MemTrackTest, ScopeSetsAmbientTagAndRestores) {
  EXPECT_EQ(CurrentMemTag(), MemTag::kUntagged);
  {
    MemTagScope outer(MemTag::kDpos);
    EXPECT_EQ(CurrentMemTag(), MemTag::kDpos);
    {
      MemTagScope inner(MemTag::kObs);
      EXPECT_EQ(CurrentMemTag(), MemTag::kObs);
    }
    EXPECT_EQ(CurrentMemTag(), MemTag::kDpos);
    // A default-constructed tagged container inherits the ambient tag.
    TaggedVector<int> v;
    EXPECT_EQ(v.get_allocator().tag(), MemTag::kDpos);
    v.resize(64);
    EXPECT_GT(MemTracker::Global().stats(MemTag::kDpos).live_bytes, 0);
  }
  EXPECT_EQ(CurrentMemTag(), MemTag::kUntagged);
}

TEST_F(MemTrackTest, AllocatorPropagatesWithTheMemory) {
  // Move a dpos-tagged buffer into a container declared under another tag:
  // full propagation moves the allocator too, so the eventual free lands on
  // dpos and both tags settle to zero live bytes.
  TaggedVector<int64_t> dst{TaggedAlloc<int64_t>(MemTag::kObs)};
  {
    TaggedVector<int64_t> src{TaggedAlloc<int64_t>(MemTag::kDpos)};
    src.resize(256);
    dst = std::move(src);
    EXPECT_EQ(dst.get_allocator().tag(), MemTag::kDpos);
  }
  EXPECT_GT(MemTracker::Global().stats(MemTag::kDpos).live_bytes, 0);
  dst = TaggedVector<int64_t>{TaggedAlloc<int64_t>(MemTag::kObs)};
  EXPECT_EQ(MemTracker::Global().stats(MemTag::kDpos).live_bytes, 0);
  EXPECT_EQ(MemTracker::Global().stats(MemTag::kObs).live_bytes, 0);
  const MemTagStats dpos = MemTracker::Global().stats(MemTag::kDpos);
  EXPECT_EQ(dpos.allocs, dpos.frees);
}

TEST_F(MemTrackTest, PeakTracksHighWaterAndResetPeaksCollapses) {
  MemTracker& mt = MemTracker::Global();
  TaggedVector<char> keep{TaggedAlloc<char>(MemTag::kCost)};
  keep.resize(1000);
  {
    TaggedVector<char> burst{TaggedAlloc<char>(MemTag::kCost)};
    burst.resize(100000);
  }
  EXPECT_GE(mt.stats(MemTag::kCost).peak_bytes, 100000);
  EXPECT_LT(mt.stats(MemTag::kCost).live_bytes, 100000);
  mt.ResetPeaks();
  // Peak collapses to the current live value, not to zero.
  EXPECT_EQ(mt.stats(MemTag::kCost).peak_bytes,
            mt.stats(MemTag::kCost).live_bytes);
  EXPECT_GE(mt.stats(MemTag::kCost).peak_bytes, 1000);
}

TEST_F(MemTrackTest, TotalPeakIsAggregateHighWater) {
  MemTracker& mt = MemTracker::Global();
  TaggedVector<char> a{TaggedAlloc<char>(MemTag::kGraph)};
  TaggedVector<char> b{TaggedAlloc<char>(MemTag::kCost)};
  a.resize(50000);
  b.resize(50000);
  EXPECT_GE(mt.total_peak_bytes(), 100000);
  EXPECT_GE(mt.total_live_bytes(), 100000);
  EXPECT_GE(mt.total_allocs(), 2);
}

TEST_F(MemTrackTest, SizeClassesBinByLog2) {
  TaggedAlloc<char> alloc(MemTag::kObs);
  char* p = alloc.allocate(1000);  // 2^9 < 1000 <= 2^10 → class 10
  const MemTagStats s = MemTracker::Global().stats(MemTag::kObs);
  EXPECT_EQ(s.size_class_allocs[10], 1);
  alloc.deallocate(p, 1000);
}

TEST(MemTrackDisabled, RecordsNothing) {
  MemTracker& mt = MemTracker::Global();
  mt.Enable();
  mt.Disable();
  ASSERT_FALSE(mt.enabled());
  {
    TaggedVector<int64_t> v{TaggedAlloc<int64_t>(MemTag::kGraph)};
    v.resize(4096);
  }
  EXPECT_EQ(mt.stats(MemTag::kGraph).allocs, 0);
  EXPECT_EQ(mt.total_allocs(), 0);
}

TEST(MemTrackDisabled, EqualityComparesTags) {
  EXPECT_TRUE(TaggedAlloc<int>(MemTag::kGraph) ==
              TaggedAlloc<double>(MemTag::kGraph));
  EXPECT_TRUE(TaggedAlloc<int>(MemTag::kGraph) !=
              TaggedAlloc<int>(MemTag::kCost));
}

// ---- End-to-end pin on a zoo model ----------------------------------------

// Building a real model graph must charge the graph tag, and simulating it
// must charge sim/events — the two hot subsystems the telemetry exists to
// watch. This is the library-level half of the `fastt memstat` acceptance
// check.
TEST(MemTrackZoo, GraphBuildAndSimulateChargeTheirTags) {
  MemTracker& mt = MemTracker::Global();
  mt.Enable();
  const ModelSpec& spec = FindModel("lenet");
  Graph g("lenet");
  spec.build(g, "r0", spec.strong_batch);
  const MemTagStats graph_stats = mt.stats(MemTag::kGraph);
  EXPECT_GT(graph_stats.allocs, 0);
  EXPECT_GT(graph_stats.live_bytes, 0);

  const Cluster cluster = Cluster::SingleServer(2);
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
  Simulate(g, placement, cluster, SimOptions{});
  const MemTagStats sim_stats = mt.stats(MemTag::kSimEvents);
  EXPECT_GT(sim_stats.allocs, 0);
  // The simulator's event storage is all scratch: freed by the time it
  // returns.
  EXPECT_EQ(sim_stats.live_bytes, 0);
  EXPECT_GT(sim_stats.peak_bytes, 0);
  mt.Disable();
}

}  // namespace
}  // namespace fastt
