// Searcher arena differential tests: every registered searcher, on every
// zoo model, must (a) produce a strategy the verifier accepts with zero
// errors, (b) report an objective that an independent noise-free ExecSim
// re-simulation reproduces bit-exactly, and (c) never beat FastT's DPOS
// pipeline by more than a small tolerance — the paper's Fig. 3 ordering,
// pinned as a property. Plus: determinism across --jobs for the new
// searchers and the portfolio winner (the PR-2 idiom), and coverage of the
// previously untested SearchOptions::noise_cv path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "baselines/searcher_registry.h"
#include "baselines/searchers.h"
#include "core/portfolio.h"
#include "core/strategy_io.h"
#include "models/model_zoo.h"
#include "sim/exec_sim.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

// Restores jobs = 1 (the suite-wide default) even when a test fails.
class JobsGuard {
 public:
  ~JobsGuard() { SetSearchJobs(1); }
};

// The FlexFlow-like annealer legitimately edges FastT out on some models
// (bench_fig3's shape note); the pin is that nothing beats FastT by more
// than this factor. Largest margin observed across the zoo at 2 GPUs is
// ~7.4% (bert_large), so 15% pins the ordering with headroom against cost
// surface drift without ever being the noisy assertion that cried wolf.
constexpr double kFig3Tolerance = 0.15;

const ArenaSearcher& SearcherNamed(const std::string& name) {
  const ArenaSearcher* s = FindSearcher(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

class ArenaZooSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ArenaZooSweep, EverySearcherVerifiesAndResimulatesExactly) {
  const ModelSpec& spec = FindModel(GetParam());
  const Cluster cluster = Cluster::SingleServer(2);

  PortfolioOptions options;
  options.budget_s = 0.0;  // no deadline: fully deterministic race
  const PortfolioResult result =
      PortfolioSearch(RegisteredSearchers(), spec.build, spec.name,
                      spec.strong_batch, cluster, options);

  ASSERT_GE(result.entries.size(), 7u);
  double fastt_s = 0.0;
  double best_rival_s = std::numeric_limits<double>::infinity();
  for (const PortfolioEntry& e : result.entries) {
    SCOPED_TRACE(spec.name + " / " + e.searcher);
    // (a) the verifier gate: zero errors for every contender.
    EXPECT_TRUE(e.verified);
    EXPECT_EQ(e.verify_errors, 0);
    // (b) the differential oracle: the searcher's reported objective is
    // exactly the independent re-simulation (noise_cv = 0 everywhere).
    EXPECT_EQ(e.iteration_s, e.resim_s);
    EXPECT_GT(e.evaluations, 0);
    EXPECT_GE(e.wall_s, 0.0);
    EXPECT_FALSE(e.stop_reason.empty());
    if (e.searcher == "fastt")
      fastt_s = e.resim_s;
    else
      best_rival_s = std::min(best_rival_s, e.resim_s);
  }
  // (c) Fig. 3 ordering: no rival beats FastT by more than the tolerance.
  ASSERT_GT(fastt_s, 0.0);
  EXPECT_GE(best_rival_s, fastt_s * (1.0 - kFig3Tolerance))
      << "a rival beat fastt by more than " << kFig3Tolerance * 100 << "%";

  // The winner is verified and its artifacts are consistent.
  ASSERT_GE(result.winner, 0);
  const PortfolioEntry& winner =
      result.entries[static_cast<size_t>(result.winner)];
  EXPECT_TRUE(winner.winner);
  EXPECT_TRUE(result.winner_verify.ok());
  EXPECT_EQ(result.iteration_s, winner.resim_s);
  EXPECT_EQ(result.strategy.predicted_makespan, winner.resim_s);
  // Provenance: one event per contender plus the winner event.
  EXPECT_EQ(result.events.size(), result.entries.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ArenaZooSweep,
                         ::testing::Values("lenet", "alexnet", "vgg19",
                                           "inception_v3", "resnet200",
                                           "gnmt", "rnnlm", "transformer",
                                           "bert_large"));

// --- Determinism across --jobs -------------------------------------------

// Serialized (placement, order, splits) of a searcher's result — the
// byte-identity witness.
std::string Fingerprint(const SearchResult& result, const Cluster& cluster) {
  return SerializeStrategy(StrategyFromSearchResult(result, cluster));
}

class ArenaSearcherJobsSweep : public ::testing::TestWithParam<const char*> {
};

TEST_P(ArenaSearcherJobsSweep, ByteIdenticalAcrossJobs) {
  JobsGuard guard;
  const ArenaSearcher& searcher = SearcherNamed(GetParam());
  const Cluster cluster = Cluster::SingleServer(2);
  const ModelSpec& spec = FindModel("lenet");
  SearchOptions options;
  options.budget = 40;

  SetSearchJobs(1);
  const SearchResult serial =
      searcher.fn(spec.build, spec.name, spec.strong_batch, cluster, options);
  const std::string reference = Fingerprint(serial, cluster);

  for (int jobs : {4, 8}) {
    SetSearchJobs(jobs);
    const SearchResult parallel = searcher.fn(spec.build, spec.name,
                                              spec.strong_batch, cluster,
                                              options);
    EXPECT_EQ(Fingerprint(parallel, cluster), reference)
        << searcher.name << " jobs " << jobs;
    EXPECT_EQ(parallel.iteration_s, serial.iteration_s)
        << searcher.name << " jobs " << jobs;
    EXPECT_EQ(parallel.evaluations, serial.evaluations)
        << searcher.name << " jobs " << jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(NewSearchers, ArenaSearcherJobsSweep,
                         ::testing::Values("fastt", "m-etf", "m-sct",
                                           "dp-pipeline", "critical-path"));

TEST(ArenaPortfolio, WinnerDeterministicAcrossJobs) {
  JobsGuard guard;
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  PortfolioOptions options;
  options.budget_s = 0.0;  // fixed budget: no wall-clock nondeterminism

  SetSearchJobs(1);
  const PortfolioResult serial =
      PortfolioSearch(RegisteredSearchers(), spec.build, spec.name,
                      spec.strong_batch, cluster, options);
  ASSERT_GE(serial.winner, 0);
  const std::string reference = SerializeStrategy(serial.strategy);

  for (int jobs : {4, 8}) {
    SetSearchJobs(jobs);
    const PortfolioResult parallel =
        PortfolioSearch(RegisteredSearchers(), spec.build, spec.name,
                        spec.strong_batch, cluster, options);
    EXPECT_EQ(parallel.winner, serial.winner) << "jobs " << jobs;
    EXPECT_EQ(SerializeStrategy(parallel.strategy), reference)
        << "jobs " << jobs;
    ASSERT_EQ(parallel.entries.size(), serial.entries.size());
    for (size_t i = 0; i < serial.entries.size(); ++i) {
      EXPECT_EQ(parallel.entries[i].resim_s, serial.entries[i].resim_s)
          << serial.entries[i].searcher << " jobs " << jobs;
      EXPECT_EQ(parallel.entries[i].evaluations,
                serial.entries[i].evaluations)
          << serial.entries[i].searcher << " jobs " << jobs;
    }
  }
}

// --- SearchOptions::noise_cv ----------------------------------------------

// Every searcher must be reproducible under seeded evaluation noise, and
// noise_cv = 0 must be exactly the deterministic objective (the registry
// loop covers the four pre-arena baselines too).
TEST(ArenaNoise, SeededNoiseIsReproducible) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  for (const ArenaSearcher& searcher : RegisteredSearchers()) {
    SCOPED_TRACE(searcher.name);
    SearchOptions options;
    options.budget = 30;
    options.noise_cv = 0.2;
    options.seed = 99;
    const SearchResult a = searcher.fn(spec.build, spec.name,
                                       spec.strong_batch, cluster, options);
    const SearchResult b = searcher.fn(spec.build, spec.name,
                                       spec.strong_batch, cluster, options);
    EXPECT_EQ(a.iteration_s, b.iteration_s);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.stop_reason, b.stop_reason);
  }
}

TEST(ArenaNoise, ZeroNoiseIsTheDeterministicObjective) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  for (const ArenaSearcher& searcher : RegisteredSearchers()) {
    SCOPED_TRACE(searcher.name);
    SearchOptions options;
    options.budget = 30;
    options.noise_cv = 0.0;
    const SearchResult r = searcher.fn(spec.build, spec.name,
                                       spec.strong_batch, cluster, options);
    EXPECT_EQ(r.iteration_s, ResimulateIteration(r, cluster));
  }
}

TEST(ArenaNoise, NoiseChangesTheObservedObjective) {
  // Sanity that the noise path is actually live: with a large cv, the noisy
  // objective of the deterministic greedy construction differs from its
  // noise-free re-simulation (same placement, different observed time).
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  SearchOptions noisy;
  noisy.noise_cv = 0.3;
  noisy.seed = 5;
  const SearchResult r = GreedyRankPlacement(spec.build, spec.name,
                                             spec.strong_batch, cluster,
                                             noisy);
  EXPECT_NE(r.iteration_s, ResimulateIteration(r, cluster));
}

// --- stop_reason / wall_s / deadline --------------------------------------

TEST(ArenaStopReason, ConstructivesReportConstructed) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  for (const char* name :
       {"greedy-rank", "m-etf", "m-sct", "dp-pipeline", "critical-path"}) {
    SCOPED_TRACE(name);
    const SearchResult r = SearcherNamed(name).fn(
        spec.build, spec.name, spec.strong_batch, cluster, SearchOptions{});
    EXPECT_EQ(r.stop_reason, "constructed");
    EXPECT_EQ(r.evaluations, 1);
    EXPECT_GT(r.wall_s, 0.0);
  }
}

TEST(ArenaStopReason, BudgetExhaustionVsConvergence) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  SearchOptions budget_bound;
  budget_bound.budget = 25;
  const SearchResult exhausted = LocalSearchPlacement(
      spec.build, spec.name, spec.strong_batch, cluster, budget_bound);
  EXPECT_EQ(exhausted.stop_reason, "budget");

  SearchOptions patient = budget_bound;
  patient.budget = 5000;
  patient.patience = 3;
  const SearchResult converged = LocalSearchPlacement(
      spec.build, spec.name, spec.strong_batch, cluster, patient);
  EXPECT_EQ(converged.stop_reason, "converged");
  EXPECT_LT(converged.evaluations, patient.budget);
}

TEST(ArenaStopReason, DeadlineStopsIterativeSearchers) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 1 << 30;  // would run forever without the deadline
  options.wall_budget_s = 1e-9;
  const SearchResult r = RandomSearchPlacement(
      spec.build, spec.name, spec.strong_batch, cluster, options);
  EXPECT_EQ(r.stop_reason, "deadline");
  // The single-device fallback still runs, so the result stays usable.
  EXPECT_GE(r.evaluations, 1);
  EXPECT_FALSE(r.placement.empty());
}

}  // namespace
}  // namespace fastt
