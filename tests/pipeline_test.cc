#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "models/model_zoo.h"
#include "sim/exec_sim.h"

namespace fastt {
namespace {

TEST(Pipeline, BuildsValidGraph) {
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph p =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  EXPECT_EQ(p.micro_batches, 4);
  EXPECT_EQ(p.global_batch, 32);
  EXPECT_NO_THROW(p.graph.Validate());
}

TEST(Pipeline, MicroBatchesShareStages) {
  // Same logical op of different micro-batches lands on the same device.
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph p =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  for (const char* name : {"conv1_1", "conv5_4", "fc6"}) {
    std::set<DeviceId> devices;
    for (int m = 0; m < 4; ++m) {
      const OpId id =
          p.graph.FindOp("rep" + std::to_string(m) + "/" + name);
      ASSERT_NE(id, kInvalidOp);
      devices.insert(p.placement[static_cast<size_t>(id)]);
    }
    EXPECT_EQ(devices.size(), 1u) << name;
  }
}

TEST(Pipeline, UsesMultipleStages) {
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph p =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  std::set<DeviceId> used;
  for (OpId id : p.graph.LiveOps())
    used.insert(p.placement[static_cast<size_t>(id)]);
  EXPECT_EQ(used.size(), 2u);
}

TEST(Pipeline, MicroBatchingBeatsNaiveModelParallelism) {
  // The GPipe effect: M micro-batches overlap stages and beat M = 1.
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph naive =
      BuildPipeline(spec.build, spec.name, 32, 1, cluster);
  const PipelineGraph piped =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  SimOptions so_naive;
  so_naive.dispatch = DispatchMode::kPriority;
  so_naive.priorities = naive.priorities;
  SimOptions so_piped;
  so_piped.dispatch = DispatchMode::kPriority;
  so_piped.priorities = piped.priorities;
  const double t_naive =
      Simulate(naive.graph, naive.placement, cluster, so_naive).makespan;
  const double t_piped =
      Simulate(piped.graph, piped.placement, cluster, so_piped).makespan;
  EXPECT_LT(t_piped, t_naive * 0.9);
}

TEST(Pipeline, PreservesSynchronousSemantics) {
  // One optimizer update per parameter, fed by all micro-batch gradients.
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph p =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  int applies = 0;
  for (OpId id : p.graph.LiveOps()) {
    if (p.graph.op(id).type != OpType::kGradAggregate) continue;
    EXPECT_EQ(p.graph.Preds(id).size(), 4u);  // one gradient per micro-batch
  }
  for (OpId id : p.graph.LiveOps())
    if (p.graph.op(id).type == OpType::kApplyGradient) ++applies;
  int vars = 0;
  for (OpId id : p.graph.LiveOps())
    if (p.graph.op(id).type == OpType::kVariable) ++vars;
  EXPECT_EQ(applies, vars);
}

TEST(Pipeline, OrderEnforcementIsWhatMakesItPipeline) {
  // The same graph+placement under lockstep (FIFO) dispatch serializes;
  // depth-first priorities create the overlap — Fig. 2's thesis applied to
  // the paper's future-work extension.
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster cluster = Cluster::SingleServer(2);
  const PipelineGraph p =
      BuildPipeline(spec.build, spec.name, 32, 4, cluster);
  const double fifo = Simulate(p.graph, p.placement, cluster).makespan;
  SimOptions so;
  so.dispatch = DispatchMode::kPriority;
  so.priorities = p.priorities;
  const double enforced =
      Simulate(p.graph, p.placement, cluster, so).makespan;
  EXPECT_LT(enforced, fifo * 0.85);
}

TEST(Pipeline, RejectsBadArguments) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  EXPECT_THROW(BuildPipeline(spec.build, spec.name, 2, 4, cluster),
               std::logic_error);
}

}  // namespace
}  // namespace fastt
