#include <gtest/gtest.h>

#include "graph/rewrite.h"
#include "graph/shape.h"

namespace fastt {
namespace {

// pre -> conv -> suc, with a parameterized conv.
struct SplitFixture {
  Graph g;
  OpId pre, conv, suc;

  SplitFixture() {
    Operation p;
    p.name = "pre";
    p.type = OpType::kInput;
    p.output_shape = TensorShape{8, 16, 16, 4};
    pre = g.AddOp(std::move(p));

    Operation c;
    c.name = "conv";
    c.type = OpType::kConv2D;
    c.output_shape = TensorShape{8, 16, 16, 32};
    c.flops = 1000.0;
    c.bytes_touched = 5000;
    c.param_bytes = 1152;
    c.batch = 8;
    c.channels = 32;
    c.cost_key = "conv";
    conv = g.AddOp(std::move(c));

    Operation s;
    s.name = "suc";
    s.type = OpType::kRelu;
    s.output_shape = TensorShape{8, 16, 16, 32};
    suc = g.AddOp(std::move(s));

    g.AddEdge(pre, conv);
    g.AddEdge(conv, suc);
  }
};

TEST(CanSplit, Rules) {
  SplitFixture f;
  EXPECT_TRUE(CanSplit(f.g, f.conv, SplitDim::kBatch, 2));
  EXPECT_TRUE(CanSplit(f.g, f.conv, SplitDim::kChannel, 4));
  EXPECT_FALSE(CanSplit(f.g, f.conv, SplitDim::kBatch, 1));   // n >= 2
  EXPECT_FALSE(CanSplit(f.g, f.conv, SplitDim::kBatch, 9));   // extent 8
  EXPECT_FALSE(CanSplit(f.g, f.pre, SplitDim::kBatch, 2));    // Input op
}

TEST(SplitOperation, BatchSplitStructure) {
  SplitFixture f;
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  EXPECT_TRUE(f.g.op(f.conv).dead);
  ASSERT_EQ(result.sub_ops.size(), 2u);
  ASSERT_EQ(result.split_nodes.size(), 1u);  // one predecessor edge
  ASSERT_NE(result.concat_node, kInvalidOp);
  EXPECT_NO_THROW(f.g.Validate());

  // pre -> split -> {sub0, sub1} -> concat -> suc.
  EXPECT_EQ(f.g.Succs(f.pre), std::vector<OpId>{result.split_nodes[0]});
  EXPECT_EQ(f.g.Preds(f.suc), std::vector<OpId>{result.concat_node});
  for (OpId sub : result.sub_ops) {
    EXPECT_EQ(f.g.Preds(sub), std::vector<OpId>{result.split_nodes[0]});
    EXPECT_EQ(f.g.Succs(sub), std::vector<OpId>{result.concat_node});
  }
}

TEST(SplitOperation, BatchSplitConservesFlopsReplicatesWeights) {
  SplitFixture f;
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  double flops = 0.0;
  for (OpId sub : result.sub_ops) {
    const Operation& op = f.g.op(sub);
    flops += op.flops;
    EXPECT_EQ(op.param_bytes, 1152);  // replicated
    EXPECT_EQ(op.batch, 4);
  }
  EXPECT_DOUBLE_EQ(flops, 1000.0);
}

TEST(SplitOperation, ChannelSplitDividesWeightsBroadcastsInput) {
  SplitFixture f;
  const int64_t in_bytes = f.g.op(f.pre).output_bytes();
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kChannel, 4);
  for (OpId sub : result.sub_ops) {
    const Operation& op = f.g.op(sub);
    EXPECT_EQ(op.param_bytes, 1152 / 4);
    EXPECT_EQ(op.channels, 8);
    // Each partition reads the FULL input (fine-grained model parallelism).
    for (EdgeId e : f.g.in_edges(sub)) {
      if (f.g.edge(e).dead) continue;
      EXPECT_EQ(f.g.edge(e).bytes, in_bytes);
    }
  }
}

TEST(SplitOperation, BatchSplitPartitionsInputEdges) {
  SplitFixture f;
  const int64_t in_bytes = f.g.op(f.pre).output_bytes();
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  for (OpId sub : result.sub_ops) {
    for (EdgeId e : f.g.in_edges(sub)) {
      if (f.g.edge(e).dead) continue;
      EXPECT_EQ(f.g.edge(e).bytes, in_bytes / 2);
    }
  }
}

TEST(SplitOperation, UnevenSplitDistributesRemainder) {
  SplitFixture f;
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 3);
  std::vector<int64_t> batches;
  for (OpId sub : result.sub_ops) batches.push_back(f.g.op(sub).batch);
  EXPECT_EQ(batches, (std::vector<int64_t>{3, 3, 2}));
  double flops = 0.0;
  for (OpId sub : result.sub_ops) flops += f.g.op(sub).flops;
  EXPECT_NEAR(flops, 1000.0, 1e-9);
}

TEST(SplitOperation, SubOpsCarryCostBasis) {
  SplitFixture f;
  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  for (OpId sub : result.sub_ops) {
    const Operation& op = f.g.op(sub);
    EXPECT_EQ(op.cost_basis_key, "conv");
    EXPECT_NEAR(op.cost_scale, 0.5, 1e-12);
    EXPECT_EQ(op.CostKey(), "conv#batch/2");
  }
}

TEST(SplitOperation, ColocatedOpsFollowFirstPartition) {
  SplitFixture f;
  Operation apply;
  apply.name = "conv/apply";
  apply.type = OpType::kApplyGradient;
  apply.output_shape = TensorShape{0};
  apply.colocate_with = f.conv;
  const OpId apply_id = f.g.AddOp(std::move(apply));

  const auto result = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  EXPECT_EQ(f.g.op(apply_id).colocate_with, result.sub_ops.front());
}

TEST(SplitOperation, SubOpCanBeSplitAgain) {
  SplitFixture f;
  const auto first = SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  ASSERT_TRUE(CanSplit(f.g, first.sub_ops[0], SplitDim::kBatch, 2));
  const auto second =
      SplitOperation(f.g, first.sub_ops[0], SplitDim::kBatch, 2);
  EXPECT_EQ(second.sub_ops.size(), 2u);
  EXPECT_NO_THROW(f.g.Validate());
}

TEST(SplitOperation, SplittingDeadOpThrows) {
  SplitFixture f;
  SplitOperation(f.g, f.conv, SplitDim::kBatch, 2);
  EXPECT_THROW(SplitOperation(f.g, f.conv, SplitDim::kBatch, 2),
               std::logic_error);
}

TEST(SplitOperation, TerminalOpHasNoConcat) {
  Graph g;
  Operation mm;
  mm.name = "mm";
  mm.type = OpType::kMatMul;
  mm.output_shape = TensorShape{8, 8};
  mm.flops = 100;
  mm.batch = 8;
  mm.channels = 8;
  const OpId id = g.AddOp(std::move(mm));
  const auto result = SplitOperation(g, id, SplitDim::kBatch, 2);
  EXPECT_EQ(result.concat_node, kInvalidOp);
  EXPECT_TRUE(result.split_nodes.empty());
  EXPECT_EQ(result.sub_ops.size(), 2u);
}

TEST(GlueCostKey, BucketsByPowerOfTwo) {
  EXPECT_EQ(GlueCostKey(OpType::kSplit, 1024),
            GlueCostKey(OpType::kSplit, 1024));
  EXPECT_EQ(GlueCostKey(OpType::kSplit, 513),
            GlueCostKey(OpType::kSplit, 1024));
  EXPECT_NE(GlueCostKey(OpType::kSplit, 1024),
            GlueCostKey(OpType::kSplit, 2048));
  EXPECT_NE(GlueCostKey(OpType::kSplit, 1024),
            GlueCostKey(OpType::kConcat, 1024));
}

class SplitSweep
    : public ::testing::TestWithParam<std::tuple<SplitDim, int>> {};

TEST_P(SplitSweep, GraphStaysValidAndFlopsConserved) {
  const auto [dim, n] = GetParam();
  SplitFixture f;
  if (!CanSplit(f.g, f.conv, dim, n)) GTEST_SKIP();
  const double before = f.g.TotalFlops();
  const auto result = SplitOperation(f.g, f.conv, dim, n);
  EXPECT_NO_THROW(f.g.Validate());
  EXPECT_EQ(static_cast<int>(result.sub_ops.size()), n);
  EXPECT_NEAR(f.g.TotalFlops(), before, 1e-6);
  EXPECT_TRUE(f.g.IsAcyclic());
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAndCounts, SplitSweep,
    ::testing::Combine(::testing::Values(SplitDim::kBatch,
                                         SplitDim::kChannel),
                       ::testing::Values(2, 3, 4, 8)));

}  // namespace
}  // namespace fastt
