#include <gtest/gtest.h>

#include "baselines/allreduce_dp.h"
#include "core/strategy_calculator.h"
#include "models/model_zoo.h"

namespace fastt {
namespace {

TEST(AllReduce, BuildsValidGraph) {
  const ModelSpec& spec = FindModel("lenet");
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 32, 4,
                                             Scaling::kStrong);
  EXPECT_EQ(ar.replicas, 4);
  EXPECT_EQ(ar.global_batch, 32);
  EXPECT_NO_THROW(ar.graph.Validate());
}

TEST(AllReduce, PerReplicaVariablesAreNotShared) {
  const ModelSpec& spec = FindModel("lenet");
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 32, 2,
                                             Scaling::kStrong);
  // Unlike the slim-style DP graph, both replicas keep their variables.
  EXPECT_NE(ar.graph.FindOp("rep0/conv1/weights"), kInvalidOp);
  EXPECT_NE(ar.graph.FindOp("rep1/conv1/weights"), kInvalidOp);
  int applies = 0, vars = 0;
  for (OpId id : ar.graph.LiveOps()) {
    if (ar.graph.op(id).type == OpType::kApplyGradient) ++applies;
    if (ar.graph.op(id).type == OpType::kVariable) ++vars;
  }
  EXPECT_EQ(applies, vars);  // every replica updates its own copy
}

TEST(AllReduce, RingHasTwoNMinusOneSteps) {
  const ModelSpec& spec = FindModel("lenet");
  const int n = 4;
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 32, n,
                                             Scaling::kStrong);
  int buckets = 0, steps = 0;
  for (OpId id : ar.graph.LiveOps()) {
    const std::string& name = ar.graph.op(id).name;
    if (name.rfind("ring/bucket", 0) == 0) ++buckets;
    if (name.rfind("ring/step", 0) == 0) ++steps;
  }
  EXPECT_EQ(buckets, n);
  EXPECT_EQ(steps, n * 2 * (n - 1));
}

TEST(AllReduce, UpdatesConsumeReducedGradient) {
  const ModelSpec& spec = FindModel("lenet");
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 32, 2,
                                             Scaling::kStrong);
  // Every apply's sole producer is the final ring stage of its replica.
  for (OpId id : ar.graph.LiveOps()) {
    if (ar.graph.op(id).type != OpType::kApplyGradient) continue;
    const auto preds = ar.graph.Preds(id);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(ar.graph.op(preds[0]).name.rfind("ring/step", 0), 0u)
        << ar.graph.op(id).name;
  }
}

TEST(AllReduce, SingleReplicaHasNoRing) {
  const ModelSpec& spec = FindModel("lenet");
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 32, 1,
                                             Scaling::kStrong);
  for (OpId id : ar.graph.LiveOps())
    EXPECT_EQ(ar.graph.op(id).name.rfind("ring/", 0), std::string::npos);
}

TEST(AllReduce, ScalesWhereSharedVariableDpDoesNot) {
  // The headline property of the modern baseline: at 8 GPUs ring allreduce
  // sustains scaling while the shared-variable graph's one-device
  // weight/gradient funnel collapses.
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(8);
  const auto ar = BuildAllReduceDataParallel(spec.build, spec.name, 64, 8,
                                             Scaling::kStrong);
  SimOptions so;
  so.dispatch = DispatchMode::kRandom;
  const double ring = Simulate(ar.graph, AllReducePlacement(ar), c, so)
                          .makespan;
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 64,
                                          Scaling::kStrong, c, options);
  EXPECT_LT(ring, dp.iteration_s);
}

}  // namespace
}  // namespace fastt
