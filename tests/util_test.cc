#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <atomic>
#include <thread>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  OnlineMean mean;
  for (int i = 0; i < 20000; ++i) mean.Add(rng.NextGaussian());
  EXPECT_NEAR(mean.mean(), 0.0, 0.05);
  EXPECT_NEAR(mean.stddev(), 1.0, 0.05);
}

TEST(Rng, GaussianShifted) {
  Rng rng(18);
  OnlineMean mean;
  for (int i = 0; i < 20000; ++i) mean.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(mean.mean(), 5.0, 0.1);
  EXPECT_NEAR(mean.stddev(), 2.0, 0.1);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(OnlineMean, MatchesBatchStatistics) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineMean m;
  for (double x : xs) m.Add(x);
  EXPECT_DOUBLE_EQ(m.mean(), Mean(xs));
  EXPECT_NEAR(m.stddev(), Stddev(xs), 1e-12);
  EXPECT_EQ(m.count(), xs.size());
}

TEST(OnlineMean, EmptyAndSingle) {
  OnlineMean m;
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  m.Add(3.5);
  EXPECT_DOUBLE_EQ(m.mean(), 3.5);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_EQ(Min(xs), -1.0);
  EXPECT_EQ(Max(xs), 7.0);
  EXPECT_EQ(Min({}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Stats, LerpClampsFraction) {
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, -3.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 7.0), 20.0);
}

TEST(Stats, PercentileSortedMatchesPercentile) {
  std::vector<double> sorted = {1, 2, 3, 4, 5};
  for (double p : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(PercentileSorted(sorted, p), Percentile(sorted, p)) << p;
  }
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 50), 0.0);
}

TEST(Stats, ComputeSampleStatsDerivesEverythingFromOneSort) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  const SampleStats stats = ComputeSampleStats(xs);
  EXPECT_EQ(stats.n, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev, Stddev(xs));
  EXPECT_DOUBLE_EQ(stats.p50, 3.0);
  EXPECT_DOUBLE_EQ(stats.p90, Percentile(xs, 90));
  EXPECT_DOUBLE_EQ(stats.p99, Percentile(xs, 99));
  const SampleStats empty = ComputeSampleStats({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MiB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024 * 1024), "1.50 GiB");
  EXPECT_EQ(HumanBytes(2.0 * 1024 * 1024 * 1024 * 1024), "2.00 TiB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.0), "2.000 s");
  EXPECT_EQ(HumanSeconds(0.0123), "12.300 ms");
  EXPECT_EQ(HumanSeconds(45e-6), "45.0 us");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(StartsWith("rep0/conv1", "rep0/"));
  EXPECT_FALSE(StartsWith("rep0", "rep0/"));
  EXPECT_TRUE(EndsWith("fc6/wgrad", "/wgrad"));
  EXPECT_TRUE(Contains("a/b/c", "/b/"));
  EXPECT_FALSE(Contains("abc", "z"));
}

TEST(Table, RendersAlignedRows) {
  TablePrinter t({"model", "speed"});
  t.AddRow({"vgg", "1.0"});
  t.AddRow({"inception_v3", "22.5"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| model"), std::string::npos);
  EXPECT_NE(out.find("inception_v3"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.Render().find("only"), std::string::npos);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(64);
    pool.Run(64, [&](size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1) << workers << " workers";
  }
}

TEST(ThreadPool, InWorkerIsFalseOutsidePoolTasks) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(2);
  pool.Run(8, [](size_t) {});
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(SearchJobs, ClampsToAtLeastOne) {
  SetSearchJobs(0);
  EXPECT_EQ(SearchJobs(), 1);
  SetSearchJobs(-3);
  EXPECT_EQ(SearchJobs(), 1);
  SetSearchJobs(4);
  EXPECT_EQ(SearchJobs(), 4);
  SetSearchJobs(1);
}

TEST(ParallelFor, BitIdenticalForAnyJobCount) {
  const size_t n = 1000;
  auto fill = [&](std::vector<double>& out) {
    ParallelFor(
        n,
        [&](size_t i) {
          Rng rng(static_cast<uint64_t>(i) * 37 + 5);
          out[i] = rng.NextDouble() * static_cast<double>(i + 1);
        },
        /*min_parallel=*/2);
  };
  SetSearchJobs(1);
  std::vector<double> reference(n, 0.0);
  fill(reference);
  for (int jobs : {2, 3, 8}) {
    SetSearchJobs(jobs);
    std::vector<double> out(n, 0.0);
    fill(out);
    EXPECT_EQ(out, reference) << "jobs " << jobs;
  }
  SetSearchJobs(1);
}

TEST(ParallelFor, RunsSeriallyBelowMinParallel) {
  SetSearchJobs(8);
  const auto caller = std::this_thread::get_id();
  ParallelFor(
      3, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*min_parallel=*/4);
  SetSearchJobs(1);
}

TEST(ParallelFor, NestedLoopRunsInlineOnTheWorkerThread) {
  SetSearchJobs(4);
  std::atomic<bool> inline_ok{true};
  ParallelFor(
      8,
      [&](size_t) {
        const auto outer_thread = std::this_thread::get_id();
        // The inner loop must not re-enter the pool (deadlock risk) and so
        // runs every index on the thread that called it.
        ParallelFor(
            4,
            [&](size_t) {
              if (std::this_thread::get_id() != outer_thread)
                inline_ok = false;
            },
            /*min_parallel=*/1);
      },
      /*min_parallel=*/1);
  EXPECT_TRUE(inline_ok.load());
  SetSearchJobs(1);
}

}  // namespace
}  // namespace fastt
