// Sampling-profiler tests: the zero-cost disabled contract (no SIGPROF
// handler installed, no samples), hot-function capture and symbolization,
// innermost-span attribution, ring wraparound drop accounting, the
// fastt-prof/1 export/parse/diff surfaces, and the blackbox flush of an
// in-flight profile. Timing-sensitive assertions use generous margins: the
// sampler ticks on per-thread CPU time, so a loaded machine slows the test
// down but does not starve it of samples.
#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/blackbox.h"
#include "obs/context.h"
#include "obs/json.h"
#include "obs/prof_export.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"

namespace fastt {

// External linkage + noinline so the frame survives optimization and lands
// in the dynamic symbol table (CMAKE_ENABLE_EXPORTS), where dladdr finds it.
__attribute__((noinline)) double ProfilerTestSpin(double iters) {
  volatile double acc = 0.0;
  for (double i = 0.0; i < iters; i += 1.0) acc = acc + i * 1.000001;
  return acc;
}

namespace {

void SpinFor(double seconds) {
  // The iteration count goes through a volatile: with a literal argument GCC
  // clones ProfilerTestSpin into a local .constprop copy that dladdr cannot
  // name, and the symbolization assertion below would see module+offset.
  volatile double iters = 20000.0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < seconds) {
    ProfilerTestSpin(iters);
  }
}

bool SigprofHandlerInstalled() {
  struct sigaction sa;
  sigaction(SIGPROF, nullptr, &sa);
  if ((sa.sa_flags & SA_SIGINFO) != 0) return true;
  return sa.sa_handler != SIG_DFL && sa.sa_handler != SIG_IGN;
}

bool AnyFrameContains(const SymbolizedProfile& prof, const char* needle) {
  for (const ProfFrameRow& row : prof.frames) {
    if (row.name.find(needle) != std::string::npos) return true;
  }
  return false;
}

// The profiler is process-global; every test drains and stops behind itself.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    CpuProfiler::Global().Stop();
    CpuProfiler::Global().Drain();
    Tracer::Global().Disable();
    Tracer::Global().Drain();
  }
};

TEST_F(ProfilerTest, DisabledMeansNoHandlerAndNoSamples) {
  ASSERT_FALSE(ProfilingActive());
  EXPECT_FALSE(SigprofHandlerInstalled());
  CpuProfiler::Global().Drain();  // clear anything a prior test left behind
  RegisterProfiledThread("test main");
  SpinFor(0.05);
  const ProfileDump dump = CpuProfiler::Global().Drain();
  EXPECT_EQ(dump.samples_total, 0u);
  EXPECT_EQ(dump.samples_dropped, 0u);
}

TEST_F(ProfilerTest, CapturesAndSymbolizesTheHotFunction) {
  RegisterProfiledThread("test main");
  CpuProfilerOptions opts;
  opts.hz = 1997;
  ASSERT_TRUE(CpuProfiler::Global().Start(opts));
  EXPECT_TRUE(ProfilingActive());
  EXPECT_TRUE(SigprofHandlerInstalled());
  // Starting again while active must fail rather than double-install.
  EXPECT_FALSE(CpuProfiler::Global().Start(opts));
  SpinFor(0.3);
  CpuProfiler::Global().Stop();
  // The whole point of Stop's SIG_IGN flush: after it returns, the process
  // is back to the default disposition with nothing pending.
  EXPECT_FALSE(SigprofHandlerInstalled());
  EXPECT_FALSE(ProfilingActive());

  const ProfileDump dump = CpuProfiler::Global().Drain();
  EXPECT_GT(dump.samples_total, 20u);
  const SymbolizedProfile prof = SymbolizeProfile(dump);
  EXPECT_TRUE(AnyFrameContains(prof, "ProfilerTestSpin"))
      << RenderProfileTable(prof, 10);
  // The sampler's own machinery must never leak into user stacks.
  EXPECT_FALSE(AnyFrameContains(prof, "FasttProfSignalHandler"));
  EXPECT_FALSE(AnyFrameContains(prof, "ProfCaptureStack"));
}

TEST_F(ProfilerTest, AttributesSamplesToInnermostSpan) {
  RegisterProfiledThread("test main");
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  CpuProfilerOptions opts;
  opts.hz = 1997;
  opts.epoch_ns = tracer.epoch_ns();
  ASSERT_TRUE(CpuProfiler::Global().Start(opts));
  {
    FASTT_TRACE_SPAN("prof/outer");
    {
      FASTT_TRACE_SPAN("prof/inner");
      SpinFor(0.25);
    }
  }
  CpuProfiler::Global().Stop();
  const ProfileDump dump = CpuProfiler::Global().Drain();
  ASSERT_GT(dump.samples_total, 20u);
  const SymbolizedProfile prof = SymbolizeProfile(dump);
  // Nearly all CPU time burned inside the inner span: attribution must be
  // the innermost name, and near-total.
  EXPECT_GE(static_cast<double>(prof.span_attributed),
            0.9 * static_cast<double>(prof.samples_total));
  bool inner_seen = false;
  for (const ProfStackRow& row : prof.stacks) {
    if (row.span == "prof/inner") inner_seen = true;
    EXPECT_NE(row.span, "prof/outer")
        << "sample attributed to the outer span while inner was open";
  }
  EXPECT_TRUE(inner_seen);

  // The merged Chrome export places samples on offset tids with span args.
  const TraceDump trace;  // empty span dump is fine for the format check
  const std::string chrome = TraceToChromeJson(trace, dump);
  JsonValue doc;
  ASSERT_TRUE(JsonParse(chrome, &doc));
  EXPECT_EQ(doc.Find("metadata")->Find("samples")->IntOr(0),
            static_cast<int64_t>(dump.samples_total));
  EXPECT_NE(chrome.find("cpu samples: test main"), std::string::npos);
  EXPECT_NE(chrome.find("\"cat\":\"cpu_sample\""), std::string::npos);
}

TEST_F(ProfilerTest, TinyRingWrapsAndCountsDropsLoudly) {
  RegisterProfiledThread("test main");
  CpuProfilerOptions opts;
  opts.hz = 1997;
  opts.ring_capacity = 8;
  ASSERT_TRUE(CpuProfiler::Global().Start(opts));
  SpinFor(0.25);  // ~500 periods into 8 slots
  CpuProfiler::Global().Stop();
  const ProfileDump dump = CpuProfiler::Global().Drain();
  EXPECT_GT(dump.samples_dropped, 0u);
  for (const ProfThreadDump& td : dump.threads) {
    EXPECT_LE(td.samples.size(), 8u);
  }
  // Drops are surfaced, not silent: the JSON export and the table header
  // both carry the count.
  const SymbolizedProfile prof = SymbolizeProfile(dump);
  EXPECT_EQ(prof.samples_dropped, dump.samples_dropped);
  JsonValue doc;
  ASSERT_TRUE(JsonParse(ProfileToJson(prof, {}), &doc));
  EXPECT_EQ(doc.Find("samples")->Find("dropped")->IntOr(0),
            static_cast<int64_t>(dump.samples_dropped));
  EXPECT_NE(RenderProfileTable(prof, 5).find("dropped"), std::string::npos);
}

TEST_F(ProfilerTest, BlackboxDumpFlushesInFlightProfile) {
  RegisterProfiledThread("test main");
  CpuProfilerOptions opts;
  opts.hz = 1997;
  ASSERT_TRUE(CpuProfiler::Global().Start(opts));
  SpinFor(0.15);
  const std::string path =
      testing::TempDir() + "/profiler_test_blackbox.json";
  ASSERT_TRUE(
      WriteBlackboxDump(path, CurrentTelemetry(), "test", BlackboxOptions{}));
  // The dump stopped the sampler (a handler firing mid-crash-dump would be
  // another crash) and folded its samples into the document.
  EXPECT_FALSE(ProfilingActive());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  ASSERT_TRUE(JsonParse(buf.str(), &doc));
  const JsonValue* profile = doc.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->Find("samples")->Find("total")->IntOr(0), 0);
  std::remove(path.c_str());
}

// ---- fastt-prof/1 export, parse and diff ----------------------------------

SymbolizedProfile MakeProfile(uint64_t dpos_self, uint64_t total) {
  SymbolizedProfile prof;
  prof.hz = 997;
  prof.duration_s = 1.0;
  prof.samples_total = total;
  prof.span_attributed = total;
  ProfStackRow hot;
  hot.frames = {"main", "fastt::OsDpos", "fastt::Dpos"};
  hot.span = "dpos/run";
  hot.count = dpos_self;
  ProfStackRow rest;
  rest.frames = {"main", "fastt::OsDpos"};
  rest.count = total - dpos_self;
  prof.stacks = {hot, rest};
  prof.frames = {
      {"fastt::Dpos", dpos_self, dpos_self},
      {"fastt::OsDpos", total - dpos_self, total},
      {"main", 0, total},
  };
  return prof;
}

TEST(ProfExport, FoldedFormatIsOneStackPerLine) {
  const std::string folded = ProfileToFolded(MakeProfile(30, 100));
  EXPECT_EQ(folded,
            "main;fastt::OsDpos;fastt::Dpos 30\n"
            "main;fastt::OsDpos 70\n");
}

TEST(ProfExport, JsonRoundTripsThroughParseProfDoc) {
  const std::string json =
      ProfileToJson(MakeProfile(30, 100), {{"model", "lenet"}});
  ProfDoc doc;
  std::string error;
  ASSERT_TRUE(ParseProfDoc(json, &doc, &error)) << error;
  EXPECT_EQ(doc.params.at("model"), "lenet");
  EXPECT_EQ(doc.hz, 997);
  EXPECT_EQ(doc.samples_total, 100u);
  EXPECT_EQ(doc.span_attributed, 100u);
  ASSERT_EQ(doc.frames.size(), 3u);
  EXPECT_EQ(doc.frames[0].name, "fastt::Dpos");
  EXPECT_EQ(doc.frames[0].self, 30u);

  ProfDoc bad;
  EXPECT_FALSE(ParseProfDoc("{\"schema\":\"fastt-bench/1\"}", &bad, &error));
  EXPECT_NE(error.find("fastt-prof/1"), std::string::npos);
}

ProfDoc DocWithShares(uint64_t dpos_self, uint64_t total) {
  ProfDoc doc;
  std::string error;
  const bool ok =
      ParseProfDoc(ProfileToJson(MakeProfile(dpos_self, total), {}), &doc,
                   &error);
  EXPECT_TRUE(ok) << error;
  return doc;
}

TEST(ProfDiff, InjectedHotFrameRegressionFailsHard) {
  // fastt::Dpos self-share 10% -> 30%: +20pp, far past 2pp*2.
  const ProfDiffResult result =
      DiffProfiles(DocWithShares(100, 1000), DocWithShares(300, 1000), {});
  EXPECT_EQ(result.hard_regressions, 1);
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries.front().frame, "fastt::Dpos");
  EXPECT_EQ(result.entries.front().verdict,
            ProfDiffEntry::Verdict::kHardRegression);
  EXPECT_NEAR(result.entries.front().delta_pp, 20.0, 1e-9);
  // The shrinking counterpart is an improvement, not a second regression.
  EXPECT_EQ(result.improvements, 1);
}

TEST(ProfDiff, SmallDriftOnlyWarnsAndTinyProfilesNeverFailHard) {
  ProfDiffOptions options;
  options.threshold_pp = 2.0;
  options.hard_factor = 2.0;
  // +3pp: past the warn bar, below the 4pp hard bar.
  const ProfDiffResult warn =
      DiffProfiles(DocWithShares(100, 1000), DocWithShares(130, 1000),
                   options);
  EXPECT_EQ(warn.hard_regressions, 0);
  EXPECT_EQ(warn.warnings, 1);
  // +20pp but only 20 samples a side — below min_samples, so the hard
  // verdict is withheld (a near-empty profile can't fail CI by itself).
  options.min_samples = 50;
  const ProfDiffResult tiny =
      DiffProfiles(DocWithShares(2, 20), DocWithShares(6, 20), options);
  EXPECT_EQ(tiny.hard_regressions, 0);
  EXPECT_GE(tiny.warnings, 1);
}

TEST(ProfDiff, RenderNamesTheVerdictsAndThresholds) {
  const ProfDiffResult result =
      DiffProfiles(DocWithShares(100, 1000), DocWithShares(300, 1000), {});
  const std::string text = RenderProfDiff(result, {});
  EXPECT_NE(text.find("HARD REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("fastt::Dpos"), std::string::npos);
  EXPECT_NE(text.find("1 hard regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace fastt
