// Property-based sweeps: structural invariants of the executor and the
// scheduling/rewrite stack over randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "graph/rewrite.h"
#include "models/model_zoo.h"
#include "sim/exec_sim.h"
#include "sim/incremental_sim.h"
#include "util/rng.h"

namespace fastt {
namespace {

// Random layered DAG with compute ops (deterministic per seed).
Graph RandomDag(uint64_t seed, int* n_ops_out) {
  Rng rng(seed);
  Graph g;
  const int n = 15 + static_cast<int>(rng.NextBelow(50));
  std::vector<OpId> ids;
  for (int i = 0; i < n; ++i) {
    Operation op;
    op.name = "op" + std::to_string(i);
    op.type = rng.NextBool(0.5) ? OpType::kMatMul : OpType::kRelu;
    op.output_shape = TensorShape{
        static_cast<int64_t>(1 + rng.NextBelow(1 << 16))};
    // A batch extent so the split-rewrite sweeps can partition these ops.
    op.batch = static_cast<int64_t>(4 + rng.NextBelow(8));
    op.flops = rng.NextDouble(0.0, 5e9);
    op.bytes_touched = static_cast<int64_t>(rng.NextBelow(1 << 24));
    const OpId id = g.AddOp(std::move(op));
    const uint64_t fanin = rng.NextBelow(3);
    for (uint64_t k = 0; k < fanin && !ids.empty(); ++k)
      g.AddEdge(ids[rng.NextBelow(ids.size())], id);
    ids.push_back(id);
  }
  *n_ops_out = n;
  return g;
}

class SimInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimInvariantSweep, ExecutionIsWellFormed) {
  int n = 0;
  Graph g = RandomDag(GetParam(), &n);
  Rng rng(GetParam() * 13 + 1);
  const int devices = 1 + static_cast<int>(rng.NextBelow(4));
  std::vector<DeviceId> placement;
  placement.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    placement.push_back(
        static_cast<DeviceId>(rng.NextBelow(static_cast<uint64_t>(devices))));
  const Cluster cluster = Cluster::SingleServer(devices);
  SimOptions options;
  options.dispatch =
      rng.NextBool(0.5) ? DispatchMode::kFifo : DispatchMode::kRandom;
  options.seed = GetParam();
  const SimResult r = Simulate(g, placement, cluster, options);

  // 1. Every live op executed exactly once, on its assigned device.
  for (OpId id : g.LiveOps()) {
    const OpRecord& rec = r.op_records[static_cast<size_t>(id)];
    EXPECT_EQ(rec.device, placement[static_cast<size_t>(id)]);
    EXPECT_GE(rec.finish, rec.start);
    EXPECT_LE(rec.finish, r.makespan + 1e-12);
  }

  // 2. Serial devices: intervals on one device never overlap.
  std::map<DeviceId, std::vector<std::pair<double, double>>> by_device;
  for (OpId id : g.LiveOps()) {
    const OpRecord& rec = r.op_records[static_cast<size_t>(id)];
    by_device[rec.device].push_back({rec.start, rec.finish});
  }
  for (auto& [device, intervals] : by_device) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i)
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-9)
          << "overlap on device " << device;
  }

  // 3. Precedence: a consumer starts no earlier than each producer ends
  // (plus transfer time when the edge crosses devices).
  for (OpId id : g.LiveOps()) {
    for (OpId pred : g.Preds(id)) {
      const auto& crec = r.op_records[static_cast<size_t>(id)];
      const auto& prec = r.op_records[static_cast<size_t>(pred)];
      EXPECT_GE(crec.start, prec.finish - 1e-9);
    }
  }

  // 4. Transfers only between distinct devices; arrivals before consumers.
  for (const TransferRecord& t : r.transfers) {
    EXPECT_NE(t.src, t.dst);
    EXPECT_GE(t.arrival, t.start);
    const auto& crec = r.op_records[static_cast<size_t>(t.dst_op)];
    EXPECT_GE(crec.start, t.arrival - 1e-9);
  }

  // 5. Busy time conservation.
  double busy = 0.0;
  for (double b : r.device_busy_s) busy += b;
  double durations = 0.0;
  for (OpId id : g.LiveOps())
    durations += r.op_records[static_cast<size_t>(id)].duration();
  EXPECT_NEAR(busy, durations, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SimInvariantSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{30}));

class DispatchModeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatchModeSweep, PriorityOrderIsHonoredAmongReadyOps) {
  // With all ops independent on one device, priority dispatch must execute
  // exactly in priority order.
  Rng rng(GetParam());
  Graph g;
  const int n = 8;
  std::vector<int64_t> priorities;
  for (int i = 0; i < n; ++i) {
    Operation op;
    op.name = "op" + std::to_string(i);
    op.type = OpType::kMatMul;
    op.output_shape = TensorShape{4};
    op.flops = 1e7;
    g.AddOp(std::move(op));
  }
  for (int i = 0; i < n; ++i) priorities.push_back(i);
  std::shuffle(priorities.begin(), priorities.end(),
               std::mt19937(static_cast<unsigned>(GetParam())));
  SimOptions options;
  options.dispatch = DispatchMode::kPriority;
  options.priorities = priorities;
  const SimResult r = Simulate(g, std::vector<DeviceId>(n, 0),
                               Cluster::SingleServer(1), options);
  std::vector<OpId> order(static_cast<size_t>(n));
  for (OpId id = 0; id < n; ++id) order[static_cast<size_t>(id)] = id;
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return r.op_records[static_cast<size_t>(a)].start <
           r.op_records[static_cast<size_t>(b)].start;
  });
  for (size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(priorities[static_cast<size_t>(order[i - 1])],
              priorities[static_cast<size_t>(order[i])]);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, DispatchModeSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{10}));

TEST(SplitEquivalence, SplitGraphDoesSameWork) {
  // Splitting an op preserves total FLOPs and the graph still executes to
  // completion with all fragments run.
  const ModelSpec& spec = FindModel("alexnet");
  Graph g = BuildSingle(spec, 64);
  const double flops_before = g.TotalFlops();
  const OpId conv = g.FindOp("conv3");
  ASSERT_NE(conv, kInvalidOp);
  SplitOperation(g, conv, SplitDim::kBatch, 4);
  EXPECT_NEAR(g.TotalFlops(), flops_before, flops_before * 1e-9);

  const Cluster cluster = Cluster::SingleServer(2);
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
  // Scatter sub-ops across devices.
  for (int i = 0; i < 4; ++i) {
    const OpId sub = g.FindOp("conv3/part" + std::to_string(i));
    ASSERT_NE(sub, kInvalidOp);
    placement[static_cast<size_t>(sub)] = static_cast<DeviceId>(i % 2);
  }
  const SimResult r = Simulate(g, placement, cluster);
  EXPECT_GT(r.makespan, 0.0);
  for (OpId id : g.LiveOps())
    EXPECT_NE(r.op_records[static_cast<size_t>(id)].device, kInvalidDevice);
}

class OsDposModelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OsDposModelSweep, ProducesExecutableStrategies) {
  // For a cross-section of models: OS-DPOS strategies simulate to
  // completion with order enforcement and no precedence violations.
  const ModelSpec& spec = FindModel(GetParam());
  const Cluster cluster = Cluster::SingleServer(2);
  auto dp = BuildDataParallel(spec.build, spec.name,
                              std::min<int64_t>(spec.strong_batch, 64), 2,
                              Scaling::kStrong);
  CompCostModel comp;
  CommCostModel comm;
  {
    SimOptions so;
    const auto sim =
        Simulate(dp.graph, CanonicalDataParallelPlacement(dp), cluster, so);
    const auto profile = ExtractProfile(dp.graph, sim);
    comp.AddProfile(profile);
    comm.AddProfile(profile);
  }
  const OsDposResult os = OsDpos(dp.graph, cluster, comp, comm);
  SimOptions so;
  so.dispatch = DispatchMode::kPriority;
  so.priorities = PrioritiesFromOrder(os.schedule.strategy.execution_order,
                                      os.graph.num_slots());
  const SimResult r =
      Simulate(os.graph, os.schedule.strategy.placement, cluster, so);
  EXPECT_GT(r.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Models, OsDposModelSweep,
                         ::testing::Values("lenet", "alexnet", "rnnlm",
                                           "transformer"));

// ---- Incremental re-simulation ---------------------------------------------
// The contract under test: after any sequence of single-op re-placements and
// splits, IncrementalSim's cached result is bit-identical to a fresh full
// simulation of the edited graph + placement.

void ExpectSameSim(const Graph& g, const SimResult& inc, const SimResult& full) {
  ASSERT_EQ(inc.makespan, full.makespan);
  ASSERT_EQ(inc.op_records.size(), full.op_records.size());
  for (OpId id : g.LiveOps()) {
    const auto& a = inc.op_records[static_cast<size_t>(id)];
    const auto& b = full.op_records[static_cast<size_t>(id)];
    ASSERT_EQ(a.device, b.device) << g.op(id).name;
    ASSERT_EQ(a.start, b.start) << g.op(id).name;
    ASSERT_EQ(a.finish, b.finish) << g.op(id).name;
  }
  ASSERT_EQ(inc.edge_arrival.size(), full.edge_arrival.size());
  for (size_t e = 0; e < full.edge_arrival.size(); ++e) {
    if (g.edge(static_cast<EdgeId>(e)).dead) continue;
    ASSERT_EQ(inc.edge_arrival[e], full.edge_arrival[e]) << "edge " << e;
  }
  ASSERT_EQ(inc.transfers.size(), full.transfers.size());
  for (size_t i = 0; i < full.transfers.size(); ++i) {
    const auto& a = inc.transfers[i];
    const auto& b = full.transfers[i];
    ASSERT_EQ(a.edge, b.edge);
    ASSERT_EQ(a.start, b.start);
    ASSERT_EQ(a.arrival, b.arrival);
    ASSERT_EQ(a.src, b.src);
    ASSERT_EQ(a.dst, b.dst);
  }
  ASSERT_EQ(inc.device_busy_s, full.device_busy_s);
  ASSERT_EQ(inc.total_compute_s, full.total_compute_s);
  ASSERT_EQ(inc.total_memcpy_s, full.total_memcpy_s);
}

class IncrementalSimSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalSimSweep, MatchesFullSimulationAfterReplacements) {
  int n = 0;
  Graph g = RandomDag(GetParam(), &n);
  Rng rng(GetParam() * 31 + 7);
  const int devices = 2 + static_cast<int>(rng.NextBelow(3));
  const Cluster cluster = Cluster::SingleServer(devices);
  std::vector<DeviceId> placement;
  for (int i = 0; i < n; ++i)
    placement.push_back(
        static_cast<DeviceId>(rng.NextBelow(static_cast<uint64_t>(devices))));
  SimOptions options;
  options.dispatch =
      rng.NextBool(0.5) ? DispatchMode::kFifo : DispatchMode::kRandom;
  options.seed = GetParam();
  options.noise_cv = rng.NextBool(0.5) ? 0.0 : 0.1;
  options.track_memory = false;

  IncrementalSim inc(g, placement, cluster, options);
  for (int step = 0; step < 8; ++step) {
    const auto live = g.LiveOps();
    const OpId op = live[rng.NextBelow(live.size())];
    const DeviceId d =
        static_cast<DeviceId>(rng.NextBelow(static_cast<uint64_t>(devices)));
    inc.Replace(op, d);
    const SimResult full = Simulate(g, inc.placement(), cluster, options);
    ExpectSameSim(g, inc.result(), full);
  }
}

TEST_P(IncrementalSimSweep, MatchesFullSimulationAfterSplits) {
  int n = 0;
  Graph g = RandomDag(GetParam() * 977 + 5, &n);
  Rng rng(GetParam() * 131 + 3);
  const int devices = 2 + static_cast<int>(rng.NextBelow(3));
  const Cluster cluster = Cluster::SingleServer(devices);
  std::vector<DeviceId> placement;
  for (int i = 0; i < n; ++i)
    placement.push_back(
        static_cast<DeviceId>(rng.NextBelow(static_cast<uint64_t>(devices))));
  SimOptions options;
  options.dispatch =
      rng.NextBool(0.5) ? DispatchMode::kFifo : DispatchMode::kRandom;
  options.seed = GetParam();
  options.track_memory = false;

  IncrementalSim inc(g, placement, cluster, options);
  int splits_done = 0;
  for (int attempt = 0; attempt < 12 && splits_done < 3; ++attempt) {
    const auto live = g.LiveOps();
    const OpId op = live[rng.NextBelow(live.size())];
    const int parts = 2 + static_cast<int>(rng.NextBelow(3));
    if (!CanSplit(g, op, SplitDim::kBatch, parts)) continue;
    const SplitResult split = SplitOperation(g, op, SplitDim::kBatch, parts);
    const auto added = IncrementalSim::AddedOps(split);
    std::vector<DeviceId> added_devices;
    for (size_t i = 0; i < added.size(); ++i)
      added_devices.push_back(static_cast<DeviceId>(
          rng.NextBelow(static_cast<uint64_t>(devices))));
    inc.NotifySplit(op, split, added_devices);
    ++splits_done;
    const SimResult full = Simulate(g, inc.placement(), cluster, options);
    ExpectSameSim(g, inc.result(), full);

    // Interleave a re-placement to exercise mixed update sequences.
    const auto live2 = g.LiveOps();
    const OpId op2 = live2[rng.NextBelow(live2.size())];
    inc.Replace(op2, static_cast<DeviceId>(
                         rng.NextBelow(static_cast<uint64_t>(devices))));
    const SimResult full2 = Simulate(g, inc.placement(), cluster, options);
    ExpectSameSim(g, inc.result(), full2);
  }
  EXPECT_GT(splits_done, 0) << "sweep never found a splittable op";
}

INSTANTIATE_TEST_SUITE_P(RandomEdits, IncrementalSimSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace fastt
