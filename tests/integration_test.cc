// End-to-end invariants tying the whole stack to the paper's headline
// claims. These run the full FastT workflow (profiling, cost models,
// OS-DPOS, rollback) against the simulated testbed.
#include <gtest/gtest.h>

#include <map>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "util/strings.h"

namespace fastt {
namespace {

TEST(Integration, Table1ShapeFastTNotWorseAcrossModels) {
  // A fast cross-section of Table 1: on 2 GPUs FastT should match or beat
  // data parallelism for every model family we spot-check.
  const Cluster c = Cluster::SingleServer(2);
  for (const char* name : {"lenet", "vgg19", "rnnlm"}) {
    const ModelSpec& spec = FindModel(name);
    CalculatorOptions options;
    options.max_rounds = 4;
    const auto dp = RunDataParallelBaseline(
        spec.build, spec.name, spec.strong_batch, Scaling::kStrong, c,
        options);
    const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                             Scaling::kStrong, c, options);
    EXPECT_GE(SamplesPerSecond(ft), 0.97 * SamplesPerSecond(dp)) << name;
  }
}

TEST(Integration, Table2WeakScalingGainsAreSmaller) {
  // Paper §6.3: weak-scaling improvements are smaller than strong-scaling
  // ones because per-GPU utilization is already high.
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(4);
  CalculatorOptions options;
  options.max_rounds = 5;
  const auto dp_strong = RunDataParallelBaseline(
      spec.build, spec.name, 64, Scaling::kStrong, c, options);
  const auto ft_strong =
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c, options);
  const auto dp_weak = RunDataParallelBaseline(
      spec.build, spec.name, 64, Scaling::kWeak, c, options);
  const auto ft_weak =
      RunFastT(spec.build, spec.name, 64, Scaling::kWeak, c, options);
  const double strong_gain =
      SamplesPerSecond(ft_strong) / SamplesPerSecond(dp_strong);
  const double weak_gain =
      SamplesPerSecond(ft_weak) / SamplesPerSecond(dp_weak);
  EXPECT_GE(weak_gain, 0.97);
  EXPECT_LT(weak_gain, strong_gain + 0.05);
}

TEST(Integration, Table3BertFeasibilityMatrix) {
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster c1 = Cluster::SingleServer(1);
  const Cluster c2 = Cluster::SingleServer(2);
  CalculatorOptions options;
  options.max_rounds = 3;

  // Batch 16 trains everywhere.
  EXPECT_FALSE(RunDataParallelBaseline(spec.build, spec.name, 16,
                                       Scaling::kStrong, c1, options)
                   .final_sim.oom);
  // Batch 32: single GPU OOM, 2-GPU DP fine.
  EXPECT_TRUE(RunDataParallelBaseline(spec.build, spec.name, 32,
                                      Scaling::kStrong, c1, options)
                  .final_sim.oom);
  EXPECT_FALSE(RunDataParallelBaseline(spec.build, spec.name, 32,
                                       Scaling::kStrong, c2, options)
                   .final_sim.oom);
  // Batch 40: 2-GPU DP OOM, FastT feasible (the paper's headline row).
  EXPECT_TRUE(RunDataParallelBaseline(spec.build, spec.name, 40,
                                      Scaling::kStrong, c2, options)
                  .final_sim.oom);
  const auto ft40 =
      RunFastT(spec.build, spec.name, 40, Scaling::kStrong, c2, options);
  EXPECT_FALSE(ft40.final_sim.oom);
}

TEST(Integration, Fig2OrderEnforcementHelps) {
  // Paper Fig. 2: enforcing FastT's execution order beats the default
  // executor's (arbitrary) ready-queue order on the same placement.
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  options.max_rounds = 4;
  const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                           Scaling::kStrong, c, options);
  const auto priorities = PrioritiesFromOrder(
      ft.strategy.execution_order, ft.graph.num_slots());

  auto measure = [&](DispatchMode mode) {
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      SimOptions so;
      so.dispatch = mode;
      so.priorities = priorities;
      so.seed = 400 + static_cast<uint64_t>(i);
      total += Simulate(ft.graph, ft.strategy.placement, c, so).makespan;
    }
    return total / 3;
  };
  EXPECT_LE(measure(DispatchMode::kPriority),
            measure(DispatchMode::kRandom) * 1.02);
}

TEST(Integration, Fig4PlacementIsUneven) {
  // Paper §6.5 / Fig. 4: FastT does not allocate ops evenly; replicas of
  // large-parameter ops cluster on one GPU.
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(4);
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c,
                           options);
  std::map<DeviceId, int> counts;
  for (OpId id : ft.graph.LiveOps())
    ++counts[ft.strategy.placement[static_cast<size_t>(id)]];
  int max_count = 0, min_count = 1 << 30;
  for (const auto& [d, n] : counts) {
    max_count = std::max(max_count, n);
    min_count = std::min(min_count, n);
  }
  EXPECT_GT(max_count, min_count);

  // All four fc6 replicas share a device with the fc6 weights.
  const OpId var = ft.graph.FindOp("rep0/fc6/weights");
  ASSERT_NE(var, kInvalidOp);
  const DeviceId home = ft.strategy.placement[static_cast<size_t>(var)];
  int colocated = 0;
  for (int r = 0; r < 4; ++r) {
    const OpId fc = ft.graph.FindOp(StrFormat("rep%d/fc6", r));
    if (fc == kInvalidOp) continue;  // possibly split
    if (ft.strategy.placement[static_cast<size_t>(fc)] == home) ++colocated;
  }
  EXPECT_GE(colocated, 3);
}

TEST(Integration, Fig5FastTTradesComputeForMemcpy) {
  // Paper Fig. 5: FastT reduces memcpy time relative to data parallelism
  // (possibly at the cost of more compute on some device).
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 64,
                                          Scaling::kStrong, c, options);
  const auto ft =
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c, options);
  EXPECT_LE(ft.final_sim.total_memcpy_s,
            dp.final_sim.total_memcpy_s * 1.05);
}

TEST(Integration, DistributedSettingAmplifiesGains) {
  // Paper §6.3: FastT's improvement over DP is larger in the 2-server
  // setting because DP pays cross-server gradient traffic.
  const ModelSpec& spec = FindModel("alexnet");
  CalculatorOptions options;
  options.max_rounds = 4;
  const Cluster single = Cluster::SingleServer(2);
  const Cluster dist = Cluster::MultiServer(2, 1);
  const double gain_single =
      SamplesPerSecond(RunFastT(spec.build, spec.name, 256, Scaling::kStrong,
                                single, options)) /
      SamplesPerSecond(RunDataParallelBaseline(
          spec.build, spec.name, 256, Scaling::kStrong, single, options));
  const double gain_dist =
      SamplesPerSecond(RunFastT(spec.build, spec.name, 256, Scaling::kStrong,
                                dist, options)) /
      SamplesPerSecond(RunDataParallelBaseline(
          spec.build, spec.name, 256, Scaling::kStrong, dist, options));
  EXPECT_GT(gain_dist, gain_single * 0.95);
}

TEST(Integration, HeterogeneousDevicesAbsorbMoreWork) {
  // The cost models learn per-device speeds from profiles alone; FastT's
  // placement shifts work toward a faster GPU and beats an even DP split.
  Cluster base = Cluster::SingleServer(2);
  std::vector<Device> devices = base.devices();
  devices[0].speed_factor = 2.0;
  const Cluster cluster(std::move(devices), base.params());
  const ModelSpec& spec = FindModel("vgg19");
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 64,
                                          Scaling::kStrong, cluster, options);
  const auto ft =
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, cluster, options);
  EXPECT_GT(SamplesPerSecond(ft), 1.1 * SamplesPerSecond(dp));
}

}  // namespace
}  // namespace fastt
