#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "baselines/searchers.h"
#include "models/model_zoo.h"

namespace fastt {
namespace {

void ExpectValid(const SearchResult& r, const Cluster& c) {
  EXPECT_GT(r.iteration_s, 0.0);
  EXPECT_LT(r.iteration_s, 100.0);
  // Provenance fields every searcher must now fill: how long the search
  // ran and why it stopped ("budget" vs "converged" vs "constructed" vs
  // "deadline" — previously indistinguishable from the result).
  EXPECT_GT(r.wall_s, 0.0);
  EXPECT_FALSE(r.stop_reason.empty());
  for (OpId id : r.graph.LiveOps()) {
    const DeviceId d = r.placement[static_cast<size_t>(id)];
    EXPECT_GE(d, 0);
    EXPECT_LT(d, c.num_devices());
  }
  // Colocation constraints respected (optimizer updates with variables).
  for (OpId id : r.graph.LiveOps()) {
    const OpId target = r.graph.op(id).colocate_with;
    if (target == kInvalidOp || r.graph.op(target).dead) continue;
    EXPECT_EQ(r.placement[static_cast<size_t>(id)],
              r.placement[static_cast<size_t>(target)]);
  }
}

TEST(RandomSearch, ProducesValidPlacement) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 20;
  const auto r =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  ExpectValid(r, c);
  EXPECT_GE(r.evaluations, options.budget);
}

TEST(RandomSearch, DeterministicPerSeed) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 10;
  const auto a =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  const auto b =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  EXPECT_DOUBLE_EQ(a.iteration_s, b.iteration_s);
  EXPECT_EQ(a.placement, b.placement);
}

TEST(GreedyRank, BeatsRandomOnDeepModel) {
  const ModelSpec& spec = FindModel("alexnet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 20;
  const auto greedy =
      GreedyRankPlacement(spec.build, spec.name, 64, c, options);
  const auto random =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  ExpectValid(greedy, c);
  EXPECT_LE(greedy.iteration_s, random.iteration_s * 1.5);
}

TEST(LocalSearch, NeverWorseThanItsGreedyStart) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 40;
  const auto greedy =
      GreedyRankPlacement(spec.build, spec.name, 64, c, options);
  const auto local =
      LocalSearchPlacement(spec.build, spec.name, 64, c, options);
  ExpectValid(local, c);
  EXPECT_LE(local.iteration_s, greedy.iteration_s + 1e-12);
}

TEST(Annealing, NeverWorseThanCanonicalDataParallel) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 40;
  const auto sa = AnnealingSearch(spec.build, spec.name, 64, c, options);
  ExpectValid(sa, c);
  // Warm-started from canonical DP and keeps the best seen.
  auto dp = BuildDataParallel(spec.build, spec.name, 64, 2, Scaling::kStrong);
  const double dp_time =
      Simulate(dp.graph, CanonicalDataParallelPlacement(dp), c).makespan;
  EXPECT_LE(sa.iteration_s, dp_time * 1.02);
  EXPECT_EQ(sa.global_batch, 64);
}

TEST(Annealing, BudgetRespected) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 25;
  const auto sa = AnnealingSearch(spec.build, spec.name, 64, c, options);
  EXPECT_LE(sa.evaluations, options.budget + 1);
  EXPECT_EQ(sa.stop_reason, "budget");
}

TEST(Annealing, RecordsAcceptedSplitDecisions) {
  // The best graph's rewrites are reported as SplitDecisions, so a verifier
  // can line the split list up against the rewritten graph. With splits
  // disabled by budget the list is empty; with a long run each recorded
  // decision names a real parent op.
  const ModelSpec& spec = FindModel("alexnet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 200;
  const auto sa = AnnealingSearch(spec.build, spec.name, 64, c, options);
  for (const SplitDecision& s : sa.splits) {
    EXPECT_GE(s.num_splits, 2);
    EXPECT_NE(s.dim, SplitDim::kNone);
    // The first sub-op is live in the best graph, unless a later recorded
    // decision re-split it (the verifier's chained-split rule).
    const std::string part0 = s.op_name + "/part0";
    const bool live = sa.graph.FindOp(part0) != kInvalidOp;
    const bool resplit =
        std::any_of(sa.splits.begin(), sa.splits.end(),
                    [&](const SplitDecision& o) { return o.op_name == part0; });
    EXPECT_TRUE(live || resplit) << part0;
  }
}

TEST(Searchers, StopReasonDistinguishesBudgetFromConvergence) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  SearchOptions options;
  options.budget = 30;
  const auto exhausted =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  EXPECT_EQ(exhausted.stop_reason, "budget");
  EXPECT_GE(exhausted.evaluations, options.budget);

  options.budget = 100000;
  options.patience = 5;
  const auto converged =
      RandomSearchPlacement(spec.build, spec.name, 64, c, options);
  EXPECT_EQ(converged.stop_reason, "converged");
  EXPECT_LT(converged.evaluations, options.budget);
  // Convergence never forfeits quality found before the stop.
  EXPECT_LE(converged.iteration_s, exhausted.iteration_s * 2.0);
}

}  // namespace
}  // namespace fastt
