// fastt-bench/1 schema round-trip and the bench-diff comparator rules:
// warn vs. hard-regression thresholds, the min-repeats guard that keeps a
// single noisy run from failing CI, direction handling for
// higher-is-better metrics, unmatched cells, and history sequencing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/bench_history.h"
#include "obs/json.h"

namespace fastt {
namespace {

BenchHistoryDoc MakeDoc(const std::string& bench, double scale,
                        int repeats = 3) {
  BenchHistoryDoc doc;
  doc.run["benchmark"] = bench;
  BenchReport report;
  report.benchmark = bench;
  report.params = {{"model", "lenet"}, {"gpus", "2"}};
  BenchMetricSeries series;
  series.name = "wall_s";
  series.unit = "s";
  series.lower_is_better = true;
  for (int i = 0; i < repeats; ++i) {
    series.samples.push_back(scale * (1.0 + 0.01 * i));
  }
  report.metrics.push_back(std::move(series));
  doc.reports.push_back(std::move(report));
  return doc;
}

TEST(BenchHistory, RoundTripsThroughJson) {
  BenchHistoryDoc doc = MakeDoc("bench_search", 2.0, 5);
  doc.run["host"] = "ci";
  doc.process_metrics_json = "{\"counters\":{\"x\":1}}";
  const std::string json = BenchHistoryDocToJson(doc);
  EXPECT_TRUE(JsonValidate(json)) << json;

  BenchHistoryDoc back;
  std::string error;
  ASSERT_TRUE(ParseBenchHistoryDoc(json, &back, &error)) << error;
  EXPECT_EQ(back.run.at("benchmark"), "bench_search");
  EXPECT_EQ(back.run.at("host"), "ci");
  ASSERT_EQ(back.reports.size(), 1u);
  EXPECT_EQ(back.reports[0].params.at("model"), "lenet");
  ASSERT_EQ(back.reports[0].metrics.size(), 1u);
  const BenchMetricSeries& m = back.reports[0].metrics[0];
  EXPECT_EQ(m.name, "wall_s");
  EXPECT_EQ(m.unit, "s");
  EXPECT_TRUE(m.lower_is_better);
  ASSERT_EQ(m.samples.size(), 5u);
  // Derived stats are recomputed from the samples on parse.
  EXPECT_NEAR(m.median, 2.0 * 1.02, 1e-9);
  EXPECT_NEAR(m.min, 2.0, 1e-9);

  BenchHistoryDoc bogus;
  EXPECT_FALSE(ParseBenchHistoryDoc("{\"schema\":\"other\"}", &bogus, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseBenchHistoryDoc("not json", &bogus));
}

// The acceptance property: an injected 20% slowdown is a hard regression
// (the CLI turns that into a nonzero exit).
TEST(BenchDiff, DetectsInjectedTwentyPercentSlowdown) {
  const BenchHistoryDoc before = MakeDoc("bench_search", 1.0);
  const BenchHistoryDoc after = MakeDoc("bench_search", 1.2);
  const BenchDiffResult diff = DiffBenchReports(before, after, {});
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.hard_regressions, 1);
  EXPECT_EQ(diff.entries[0].verdict, BenchDiffEntry::Verdict::kHardRegression);
  EXPECT_NEAR(diff.entries[0].rel_delta, 0.2, 1e-9);
  const std::string rendered = RenderBenchDiff(diff, {});
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("1 hard regression"), std::string::npos);
}

TEST(BenchDiff, MinRepeatsDowngradesHardToWarn) {
  // Same 20% slowdown but only 2 samples per side: big enough to warn,
  // never enough to hard-fail by itself.
  const BenchHistoryDoc before = MakeDoc("bench_search", 1.0, 2);
  const BenchHistoryDoc after = MakeDoc("bench_search", 1.2, 2);
  const BenchDiffResult diff = DiffBenchReports(before, after, {});
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.hard_regressions, 0);
  EXPECT_EQ(diff.warnings, 1);
  EXPECT_EQ(diff.entries[0].verdict, BenchDiffEntry::Verdict::kWarn);
}

TEST(BenchDiff, SmallDeltaIsOkAndSpeedupIsImprovement) {
  const BenchHistoryDoc base = MakeDoc("bench_search", 1.0);
  const BenchDiffResult ok =
      DiffBenchReports(base, MakeDoc("bench_search", 1.05), {});
  ASSERT_EQ(ok.entries.size(), 1u);
  EXPECT_EQ(ok.entries[0].verdict, BenchDiffEntry::Verdict::kOk);
  EXPECT_EQ(ok.warnings + ok.hard_regressions, 0);

  const BenchDiffResult faster =
      DiffBenchReports(base, MakeDoc("bench_search", 0.8), {});
  EXPECT_EQ(faster.improvements, 1);
  EXPECT_EQ(faster.entries[0].verdict, BenchDiffEntry::Verdict::kImproved);
}

TEST(BenchDiff, HigherIsBetterFlipsTheSign) {
  auto make = [](double value) {
    BenchHistoryDoc doc;
    BenchReport report;
    report.benchmark = "bench_table1";
    report.params = {{"model", "vgg19"}};
    BenchMetricSeries series;
    series.name = "samples_per_s";
    series.unit = "samples/s";
    series.lower_is_better = false;
    series.samples = {value, value, value};
    report.metrics.push_back(std::move(series));
    doc.reports.push_back(std::move(report));
    return doc;
  };
  // Throughput dropping 30% is the regression; rising 30% is improvement.
  const BenchDiffResult worse = DiffBenchReports(make(100.0), make(70.0), {});
  ASSERT_EQ(worse.entries.size(), 1u);
  EXPECT_EQ(worse.entries[0].verdict,
            BenchDiffEntry::Verdict::kHardRegression);
  EXPECT_NEAR(worse.entries[0].rel_delta, 0.3, 1e-9);
  const BenchDiffResult better = DiffBenchReports(make(100.0), make(130.0), {});
  EXPECT_EQ(better.entries[0].verdict, BenchDiffEntry::Verdict::kImproved);
}

// Allocation metrics ride the same (benchmark, params, name) matching as
// timing metrics, so an injected allocation-count regression hard-fails the
// diff exactly like a slowdown — and byte-valued cells render human-readable.
TEST(BenchDiff, InjectedAllocationRegressionIsHard) {
  auto make = [](double allocs, double peak_bytes) {
    BenchHistoryDoc doc;
    BenchReport report;
    report.benchmark = "bench_search";
    report.params = {{"model", "lenet"}, {"gpus", "2"}};
    BenchMetricSeries a;
    a.name = "osdpos_allocs";
    a.unit = "count";
    a.lower_is_better = true;
    a.samples = {allocs, allocs, allocs};
    BenchMetricSeries p;
    p.name = "osdpos_peak_bytes";
    p.unit = "bytes";
    p.lower_is_better = true;
    p.samples = {peak_bytes, peak_bytes, peak_bytes};
    report.metrics = {std::move(a), std::move(p)};
    doc.reports.push_back(std::move(report));
    return doc;
  };
  // Allocation count doubles, peak bytes stay put: exactly one hard fail.
  const BenchDiffResult diff =
      DiffBenchReports(make(5000.0, 1 << 20), make(10000.0, 1 << 20), {});
  ASSERT_EQ(diff.entries.size(), 2u);
  EXPECT_EQ(diff.hard_regressions, 1);
  EXPECT_EQ(diff.entries[0].metric, "osdpos_allocs");
  EXPECT_EQ(diff.entries[0].verdict, BenchDiffEntry::Verdict::kHardRegression);
  EXPECT_EQ(diff.entries[1].verdict, BenchDiffEntry::Verdict::kOk);

  const std::string rendered = RenderBenchDiff(diff, {});
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("1.00 MiB"), std::string::npos) << rendered;

  // A peak-bytes blowup is caught the same way.
  const BenchDiffResult bytes_diff =
      DiffBenchReports(make(5000.0, 1 << 20), make(5000.0, 8 << 20), {});
  EXPECT_EQ(bytes_diff.hard_regressions, 1);
  EXPECT_EQ(bytes_diff.entries[0].metric, "osdpos_peak_bytes");
}

TEST(BenchDiff, UnmatchedCellsAreInformational) {
  BenchHistoryDoc old_doc = MakeDoc("bench_search", 1.0);
  BenchHistoryDoc new_doc = MakeDoc("bench_search", 1.0);
  new_doc.reports[0].params["gpus"] = "4";  // different cell on each side
  const BenchDiffResult diff = DiffBenchReports(old_doc, new_doc, {});
  EXPECT_EQ(diff.unmatched, 2);
  EXPECT_EQ(diff.hard_regressions, 0);
  for (const BenchDiffEntry& e : diff.entries) {
    EXPECT_EQ(e.verdict, BenchDiffEntry::Verdict::kUnmatched);
  }
}

TEST(BenchHistory, AppendToHistorySequences) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fastt_bench_history_test")
          .string();
  std::filesystem::remove_all(dir);
  const BenchHistoryDoc doc = MakeDoc("bench_search", 1.0);
  const std::string p1 = AppendToHistory(dir, "bench_search", doc);
  const std::string p2 = AppendToHistory(dir, "bench_search", doc);
  EXPECT_NE(p1.find("bench_search-0001.json"), std::string::npos) << p1;
  EXPECT_NE(p2.find("bench_search-0002.json"), std::string::npos) << p2;
  BenchHistoryDoc back;
  EXPECT_TRUE(ReadBenchHistoryDoc(p2, &back));
  EXPECT_EQ(back.reports.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fastt
