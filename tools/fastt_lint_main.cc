// fastt-lint CLI: the standalone entry point for the project-specific
// static analyzer (src/lint). Driven by the build's compile_commands.json;
// emits human text plus fastt-lint/1 JSON and SARIF 2.1.0 reports.
//
// Exit codes follow the repo contract: 0 clean (warnings and baselined
// findings do not fail), 1 unbaselined error-severity findings, 2 usage /
// I/O errors with one actionable line on stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "obs/build_info.h"

namespace {

constexpr const char* kUsage =
    "usage: fastt-lint --compdb <compile_commands.json> [--root <dir>]\n"
    "                  [--config <fastt-lint.conf>] [--baseline <file>]\n"
    "                  [--json <out>] [--sarif <out>]\n"
    "                  [--write-baseline <out>] [--only <prefix>]...\n"
    "                  [--list-rules]\n"
    "\n"
    "Checks the repo's determinism (D1-D4), signal-safety (S1), and\n"
    "allocation-tagging (A1) contracts at the source level. Suppress a\n"
    "single finding with // NOLINT(fastt-D1) or // NOLINTNEXTLINE(...);\n"
    "grandfather existing findings with a committed --baseline file.\n";

bool ReadWhole(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteWhole(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

int Fail(const std::string& message) {
  std::cerr << "fastt-lint: " << message << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using fastt::lint::BaselineResult;
  using fastt::lint::Finding;
  using fastt::lint::LintConfig;

  fastt::lint::DriverOptions driver;
  std::string config_path;
  std::string baseline_path;
  std::string json_path;
  std::string sarif_path;
  std::string write_baseline_path;
  bool list_rules = false;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--compdb") {
      if (!value(&driver.compdb_path)) return Fail("--compdb needs a path");
    } else if (arg == "--root") {
      if (!value(&driver.root)) return Fail("--root needs a path");
    } else if (arg == "--config") {
      if (!value(&config_path)) return Fail("--config needs a path");
    } else if (arg == "--baseline") {
      if (!value(&baseline_path)) return Fail("--baseline needs a path");
    } else if (arg == "--json") {
      if (!value(&json_path)) return Fail("--json needs a path");
    } else if (arg == "--sarif") {
      if (!value(&sarif_path)) return Fail("--sarif needs a path");
    } else if (arg == "--write-baseline") {
      if (!value(&write_baseline_path))
        return Fail("--write-baseline needs a path");
    } else if (arg == "--only") {
      std::string p;
      if (!value(&p)) return Fail("--only needs a path prefix");
      only.push_back(p);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--version") {
      std::cout << fastt::BuildInfoLine() << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "fastt-lint: unknown argument \"" << arg << "\"\n"
                << kUsage;
      return 2;
    }
  }

  if (list_rules) {
    for (const auto& r : fastt::lint::RuleCatalog())
      std::cout << r.id << "  " << fastt::lint::SeverityName(r.severity)
                << "  " << r.summary << "\n";
    return 0;
  }
  if (driver.compdb_path.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (!only.empty()) driver.path_filters = only;

  LintConfig cfg;
  if (!config_path.empty()) {
    std::string text;
    if (!ReadWhole(config_path, &text))
      return Fail("cannot read config file " + config_path);
    std::string err;
    if (!fastt::lint::LoadLintConfig(text, &cfg, &err)) return Fail(err);
  }

  std::vector<fastt::lint::SourceFile> sources;
  std::string err;
  if (!fastt::lint::CollectSources(driver, &sources, &err)) return Fail(err);

  std::vector<Finding> findings = fastt::lint::LintSources(sources, cfg);

  BaselineResult baseline;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadWhole(baseline_path, &text))
      return Fail("cannot read baseline file " + baseline_path);
    std::vector<fastt::lint::BaselineEntry> entries;
    if (!fastt::lint::LoadBaseline(text, &entries, &err))
      return Fail("baseline file " + baseline_path + ": " + err);
    baseline = fastt::lint::ApplyBaseline(&findings, entries);
    have_baseline = true;
  }

  if (!write_baseline_path.empty()) {
    if (!WriteWhole(write_baseline_path,
                    fastt::lint::BaselineToJson(findings)))
      return Fail("cannot write baseline to " + write_baseline_path);
    std::cout << "wrote baseline to " << write_baseline_path << "\n";
  }
  if (!json_path.empty()) {
    if (!WriteWhole(json_path,
                    fastt::lint::FindingsToJson(
                        findings, have_baseline ? &baseline : nullptr,
                        sources.size())))
      return Fail("cannot write JSON report to " + json_path);
  }
  if (!sarif_path.empty()) {
    if (!WriteWhole(sarif_path, fastt::lint::FindingsToSarif(findings)))
      return Fail("cannot write SARIF report to " + sarif_path);
  }

  std::cout << fastt::lint::FindingsToText(
      findings, have_baseline ? &baseline : nullptr);
  std::cout << "scanned " << sources.size() << " file(s)\n";
  return fastt::lint::ExitCodeFor(findings);
}
