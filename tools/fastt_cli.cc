// fastt — command-line front end for the library.
//
//   fastt models
//       List the model zoo with Table 1/2 batch sizes and graph statistics.
//   fastt run <model> [--gpus N] [--servers S] [--batch B] [--weak]
//       Run the full FastT workflow and report the strategy + throughput.
//   fastt compare <model> [--gpus N] [--servers S] [--batch B]
//       DP (shared-variable), ring-allreduce DP, model parallel, pipeline
//       and FastT side by side.
//   fastt export <model> <graph.txt> [--batch B]
//       Serialize the training graph to the text format.
//   fastt trace <model> <trace.json> [--gpus N]
//       Run FastT and dump the final schedule as a Chrome trace (with flow
//       arrows for tensor transfers and per-device memory counter tracks).
//   fastt analyze <model> [--gpus N] [--servers S] [--batch B] [--json F]
//       Run FastT and report the realized critical path, per-device
//       utilization/bubble breakdown, top critical ops/transfers, link
//       traffic and the per-round cost-model calibration summary.
//   fastt explain <model> --op <name> [--gpus N] [--batch B]
//       Run FastT with provenance recording and show, for every committed
//       op whose name contains <name>, the candidate devices DPOS scored,
//       the chosen device with its reason code, the split trials probed and
//       predicted-vs-realized execution time.
//   fastt calibrate <model> [--gpus N] [--batch B] [--json F]
//       Run FastT and report how wrong the cost models were each
//       pre-training round: per-op/per-transfer residual histograms,
//       comm-regression drift and rollback post-mortems.
//   fastt search-profile <model> [trace.json] [--gpus N] [--jobs N]
//       Run the OS-DPOS search under the flight recorder and report where
//       its wall-clock went: a phase/self-time table, worker occupancy and
//       queue-wait stats, optionally the raw Chrome trace of the search
//       (with mem/<tag>/live_bytes counter tracks from the heap telemetry).
//   fastt memstat <model> [--gpus N] [--batch B] [--jobs N] [--json F]
//       Run one pre-training round under the tagged heap tracker and report
//       per-phase, per-subsystem host-heap peaks, live bytes and allocation
//       counts (graph build, bootstrap profile, OS-DPOS search, final sim).
//   fastt bench-diff <old.json> <new.json> [--threshold T] [--min-repeats R]
//       Compare two fastt-bench/1 reports (FASTT_BENCH_JSON output).
//       Exits nonzero on a hard regression — the CI gate.
//   fastt profile <model> [--hz N] [--seconds S] [--json F] [--folded F]
//       Run the OS-DPOS search in a loop under the sampling CPU profiler
//       (obs/profiler.h) and report where the cycles went: a top-N
//       self/total frame table, per-sample span attribution, and optionally
//       the fastt-prof/1 JSON (--json) plus collapsed-stack flamegraph
//       input (--folded, flamegraph.pl / speedscope format).
//   fastt prof-diff <old.json> <new.json> [--threshold PP]
//       Compare two fastt-prof/1 profiles by per-frame self-time share.
//       Exits nonzero on a hard regression — the perf twin of bench-diff.
//   fastt verify <model> [--strategy f] [--gpus N] [--batch B] [--json F]
//       Run the full strategy verifier (analysis/verifier.h rule catalog)
//       over a strategy for <model>: with --strategy, a serialized strategy
//       file whose split list is re-applied to the base graph; without, the
//       strategy a pre-training round would compute (bootstrap profile +
//       OS-DPOS). Exits nonzero when any error-severity rule fires.
//   fastt arena <model> [--gpus N] [--batch B] [--budget-ms T] [--json F]
//       Race every registered searcher (FastT's DPOS pipeline, the Fig. 3
//       black-box stand-ins, and the published-rival schedulers) on the
//       shared search pool under a wall-clock budget, verify every
//       candidate, and report the per-searcher table plus the winning
//       verified strategy's diagnostics. Exits nonzero when no candidate
//       passes verification.
//
//   fastt report <model> [report.json] [--gpus N] [--batch B] [--jobs N]
//       Run the full FastT workflow inside a fresh TelemetryContext with the
//       tracer and heap tracker on, and write the richest fastt-report/1
//       bundle: metrics, workflow events, calibration, verifier summary,
//       memstat totals and trace phase self-times in one JSON document.
//
// Every command also accepts `--jobs N` (or FASTT_JOBS=N) to parallelize the
// strategy search across N threads — the computed strategy is bit-identical
// to --jobs 1 — plus the global artifact/diagnostic flags:
//   --metrics <out.json>      dump the metrics registry (counters, timers,
//                             gauges — plus the round-by-round workflow event
//                             log for run/analyze) on exit
//   --report <out.json>       one fastt-report/1 bundle of whatever the
//                             command ran (metrics + events + command section)
//   --openmetrics <out.txt>   OpenMetrics/Prometheus text exposition of the
//                             metrics registry on exit
//   --blackbox <out.json>     arm the crash black-box: fatal signals and
//                             std::terminate dump a fastt-blackbox/1 file
//   --log-level <level>       error|warn|info|debug (or FASTT_LOG_LEVEL)
//   --trace-search <out.json> (or FASTT_TRACE_SEARCH=path) records the
//                             strategy search itself as a Chrome trace
//   --profile <out.json>      sample the whole command under the CPU
//                             profiler and write a fastt-prof/1 document
//                             (on search-profile: also merges sample tracks
//                             into the Chrome trace)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/verifier.h"
#include "baselines/allreduce_dp.h"
#include "baselines/searcher_registry.h"
#include "core/data_parallel.h"
#include "core/portfolio.h"
#include "core/model_parallel.h"
#include "core/os_dpos.h"
#include "core/pipeline.h"
#include "core/strategy_calculator.h"
#include "core/strategy_io.h"
#include "graph/rewrite.h"
#include "graph/serialize.h"
#include "models/model_zoo.h"
#include "obs/bench_history.h"
#include "obs/blackbox.h"
#include "obs/build_info.h"
#include "obs/calibration.h"
#include "obs/context.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/prof_export.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/provenance.h"
#include "obs/schedule_analysis.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"
#include "sim/trace.h"
#include "util/memtrack.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace fastt;

namespace {

struct Args {
  std::string command;
  std::string model;
  std::string path;
  std::string op;            // --op: op-name filter for `fastt explain`
  std::string strategy_path;  // --strategy: serialized strategy for `verify`
  std::string metrics_path;  // --metrics: dump the metrics registry here
  std::string json_path;     // --json: machine-readable analysis output
  std::string report_path;   // --report: fastt-report/1 bundle
  std::string openmetrics_path;  // --openmetrics: Prometheus exposition
  std::string blackbox_path;     // --blackbox: arm the crash black-box
  std::string log_level;         // --log-level: error|warn|info|debug
  std::string trace_search_path;  // --trace-search: search Chrome trace
  std::string profile_path;  // --profile: fastt-prof/1 CPU profile output
  std::string folded_path;   // --folded: collapsed-stack flamegraph output
  int gpus = 4;
  int servers = 1;
  int jobs = 0;  // --jobs: search threads; 0 = keep FASTT_JOBS / default
  int budget_ms = 2000;  // --budget-ms: arena wall-clock budget per racer
  int profile_hz = 997;  // --hz: profiler sampling rate
  double profile_seconds = 1.0;  // --seconds: `fastt profile` loop duration
  int top_n = 15;        // --top: profile table rows
  int64_t batch = 0;  // 0 = model default
  Scaling scaling = Scaling::kStrong;
  BenchDiffOptions diff;  // bench-diff: --threshold / --min-repeats / ...
  ProfDiffOptions prof_diff;  // prof-diff: --threshold (pp) / --min-samples
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--gpus") {
      args.gpus = std::atoi(next());
    } else if (a == "--servers") {
      args.servers = std::atoi(next());
    } else if (a == "--batch") {
      args.batch = std::atoll(next());
    } else if (a == "--jobs") {
      args.jobs = std::atoi(next());
    } else if (a == "--budget-ms") {
      args.budget_ms = std::atoi(next());
    } else if (a == "--op") {
      args.op = next();
    } else if (a == "--strategy") {
      args.strategy_path = next();
    } else if (a == "--metrics") {
      args.metrics_path = next();
    } else if (a == "--json") {
      args.json_path = next();
    } else if (a == "--report") {
      args.report_path = next();
    } else if (a == "--openmetrics") {
      args.openmetrics_path = next();
    } else if (a == "--blackbox") {
      args.blackbox_path = next();
    } else if (a == "--log-level") {
      args.log_level = next();
    } else if (a == "--trace-search") {
      args.trace_search_path = next();
    } else if (a == "--profile") {
      args.profile_path = next();
    } else if (a == "--folded") {
      args.folded_path = next();
    } else if (a == "--hz") {
      args.profile_hz = std::atoi(next());
    } else if (a == "--seconds") {
      args.profile_seconds = std::atof(next());
    } else if (a == "--top") {
      args.top_n = std::atoi(next());
    } else if (a == "--threshold") {
      // Shared spelling, per-command scale: a relative delta for
      // bench-diff, percentage points of self share for prof-diff.
      const double v = std::atof(next());
      args.diff.threshold = v;
      args.prof_diff.threshold_pp = v;
    } else if (a == "--hard-factor") {
      const double v = std::atof(next());
      args.diff.hard_factor = v;
      args.prof_diff.hard_factor = v;
    } else if (a == "--min-repeats") {
      args.diff.min_repeats = std::atoi(next());
    } else if (a == "--min-samples") {
      args.prof_diff.min_samples =
          static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--weak") {
      args.scaling = Scaling::kWeak;
    } else if (positional == 0) {
      args.model = a;
      ++positional;
    } else {
      args.path = a;
      ++positional;
    }
  }
  return args;
}

Cluster MakeCluster(const Args& args) {
  return args.servers > 1
             ? Cluster::MultiServer(args.servers, args.gpus / args.servers)
             : Cluster::SingleServer(args.gpus);
}

// Command-specific report sections: (key, complete raw JSON value) pairs,
// appended to the fastt-report/1 bundle in order. Commands only build them
// when --report was given (the JSON renders can be sizable).
using ReportSections = std::vector<std::pair<std::string, std::string>>;

// Shared artifact epilogue honoring the global --metrics, --openmetrics and
// --report flags; `events` (may be null) is the workflow event log of
// whatever the command just ran. Reads the ambient registry so a command
// that ran under a TelemetryScope exports that context's metrics.
void WriteRunArtifacts(const Args& args, const EventLog* events,
                       const ReportSections& sections = {}) {
  if (args.metrics_path.empty() && args.openmetrics_path.empty() &&
      args.report_path.empty())
    return;
  MetricsRegistry& metrics = CurrentMetrics();
  PublishSearchPoolMetrics(metrics);
  PublishMemMetrics(metrics);
  if (!args.metrics_path.empty()) {
    if (WriteMetricsJson(args.metrics_path, metrics, events))
      std::printf("wrote metrics to %s\n", args.metrics_path.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", args.metrics_path.c_str());
  }
  if (!args.openmetrics_path.empty()) {
    if (WriteOpenMetrics(args.openmetrics_path, metrics))
      std::printf("wrote OpenMetrics exposition to %s\n",
                  args.openmetrics_path.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n",
                   args.openmetrics_path.c_str());
  }
  if (!args.report_path.empty()) {
    RunReport report(args.command, args.model);
    report.SetParam("gpus", args.gpus);
    report.SetParam("servers", args.servers);
    if (args.batch > 0) report.SetParam("batch", args.batch);
    report.SetParam("jobs", SearchJobs());
    report.SetMetrics(metrics);
    if (events != nullptr) report.SetEvents(*events);
    for (const auto& [key, json] : sections) report.AddSection(key, json);
    if (report.Write(args.report_path))
      std::printf("wrote run report to %s\n", args.report_path.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", args.report_path.c_str());
  }
}

// Model lookup with the CLI's actionable error message; commands return 2
// when this comes back null.
const ModelSpec* RequireModel(const std::string& name) {
  const ModelSpec* spec = FindModelOrNull(name);
  if (spec == nullptr)
    std::fprintf(stderr,
                 "fastt: unknown model \"%s\" — run `fastt models` to list "
                 "the zoo\n",
                 name.c_str());
  return spec;
}

int CmdModels() {
  TablePrinter table({"model", "strong batch", "weak batch/GPU", "ops",
                      "edges", "GFLOP/iter", "weights"});
  for (const ModelSpec& spec : ModelZoo()) {
    const Graph g = BuildSingle(spec, spec.strong_batch);
    int64_t weights = 0;
    for (OpId id : g.LiveOps())
      if (g.op(id).type == OpType::kVariable)
        weights += g.op(id).output_bytes();
    table.AddRow({spec.name, StrFormat("%lld", (long long)spec.strong_batch),
                  StrFormat("%lld", (long long)spec.weak_batch),
                  StrFormat("%d", g.num_live_ops()),
                  StrFormat("%lld", (long long)g.num_live_edges()),
                  StrFormat("%.1f", g.TotalFlops() / 1e9),
                  HumanBytes(static_cast<double>(weights))});
  }
  table.Print();
  return 0;
}

int CmdRun(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("FastT: %s, batch %lld (%s scaling), %s\n", spec.name.c_str(),
              (long long)batch,
              args.scaling == Scaling::kStrong ? "strong" : "weak",
              cluster.ToString().c_str());
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, batch, args.scaling,
                           cluster, options);
  std::printf("  %.1f samples/s  (%.3f ms/iteration%s)\n",
              SamplesPerSecond(ft), ft.iteration_s * 1e3,
              ft.final_sim.oom ? ", OOM!" : "");
  std::printf("  pre-training: %d rounds, %d rollbacks, %.1f s simulated "
              "strategy time, %.3f s algorithm CPU\n",
              ft.rounds, ft.rollbacks, ft.strategy_time_s,
              ft.algorithm_time_s);
  std::printf("  bootstrap: %s; splits: %zu\n",
              ft.started_model_parallel ? "model parallel" : "data parallel",
              ft.strategy.splits.size());
  for (const SplitDecision& s : ft.strategy.splits)
    std::printf("    split %s %s x%d\n", s.op_name.c_str(),
                SplitDimName(s.dim), s.num_splits);
  if (!ft.round_history.empty()) {
    TablePrinter rounds({"round", "predicted", "measured", "rel err",
                         "replaced", "splits", "decision"});
    for (const RoundSummary& r : ft.round_history)
      rounds.AddRow({StrFormat("%d", r.round),
                     StrFormat("%.3f ms", r.predicted_s * 1e3),
                     StrFormat("%.3f ms", r.measured_s * 1e3),
                     StrFormat("%+.1f%%", 100.0 * r.rel_error),
                     StrFormat("%d", r.ops_replaced),
                     StrFormat("%d", r.splits),
                     r.committed ? "commit"
                     : r.oom     ? "rollback (OOM)"
                                 : "rollback (slower)"});
    std::printf("  pre-training rounds (predicted vs measured):\n");
    rounds.Print();
  }
  ReportSections sections;
  if (!args.report_path.empty() && !ft.calibration.empty())
    sections.push_back(
        {"calibration", CalibrationToJson(spec.name, ft.calibration)});
  WriteRunArtifacts(args, &ft.events, sections);
  return 0;
}

int CmdAnalyze(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("FastT schedule analysis: %s, batch %lld, %s\n\n",
              spec.name.c_str(), (long long)batch,
              cluster.ToString().c_str());
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, batch, args.scaling,
                           cluster, options);
  const ScheduleAnalysis analysis =
      AnalyzeSchedule(ft.graph, ft.final_sim, cluster);
  std::fputs(RenderScheduleAnalysis(ft.graph, analysis).c_str(), stdout);
  if (!ft.calibration.empty()) {
    std::printf("\ncost-model calibration by round (see `fastt calibrate` "
                "for the full audit):\n");
    std::fputs(RenderCalibrationSummary(ft.calibration).c_str(), stdout);
  }
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << ScheduleAnalysisToJson(ft.graph, analysis) << "\n";
    std::printf("\nwrote analysis JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back({"analysis", ScheduleAnalysisToJson(ft.graph, analysis)});
  WriteRunArtifacts(args, &ft.events, sections);
  return 0;
}

int CmdCompare(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("%s, global batch %lld, %s\n\n", spec.name.c_str(),
              (long long)batch, cluster.ToString().c_str());
  TablePrinter table({"strategy", "samples/s", "iteration", "OOM"});
  auto row = [&](const std::string& name, double iteration_s, bool oom) {
    table.AddRow({name,
                  oom ? "-" : StrFormat("%.1f", batch / (iteration_s +
                                                          kSessionOverheadS)),
                  StrFormat("%.3f ms", iteration_s * 1e3), oom ? "yes" : "no"});
  };
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, batch,
                                          Scaling::kStrong, cluster, options);
  row("data parallel (shared vars)", dp.iteration_s, dp.final_sim.oom);
  {
    const auto ar = BuildAllReduceDataParallel(
        spec.build, spec.name, batch, cluster.num_devices(),
        Scaling::kStrong);
    SimOptions so;
    so.dispatch = DispatchMode::kRandom;
    const SimResult r =
        Simulate(ar.graph, AllReducePlacement(ar), cluster, so);
    row("data parallel (ring allreduce)", r.makespan, r.oom);
  }
  {
    Graph g(spec.name);
    spec.build(g, "", batch);
    const auto placement = GreedyModelParallelPlacement(g, cluster);
    const SimResult r = Simulate(g, placement, cluster);
    row("model parallel (layer cut)", r.makespan, r.oom);
  }
  {
    const auto p = BuildPipeline(spec.build, spec.name, batch,
                                 cluster.num_devices(), cluster);
    SimOptions so;
    so.dispatch = DispatchMode::kPriority;
    so.priorities = p.priorities;
    const SimResult r = Simulate(p.graph, p.placement, cluster, so);
    row(StrFormat("pipeline (%d micro-batches)", cluster.num_devices()),
        r.makespan, r.oom);
  }
  const auto ft = RunFastT(spec.build, spec.name, batch, Scaling::kStrong,
                           cluster, options);
  row("FastT", ft.iteration_s, ft.final_sim.oom);
  table.Print();
  return 0;
}

int CmdExport(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Graph g = BuildSingle(spec, batch);
  std::ofstream out(args.path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.path.c_str());
    return 1;
  }
  SerializeGraph(g, out);
  std::printf("wrote %s (%d ops, %lld edges)\n", args.path.c_str(),
              g.num_live_ops(), (long long)g.num_live_edges());
  return 0;
}

int CmdTrace(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const Cluster cluster = MakeCluster(args);
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                           Scaling::kStrong, cluster, options);
  // Re-simulate the final strategy with the memory timeline recorder on so
  // the trace gets per-device live-memory counter tracks.
  SimOptions so;
  so.dispatch = DispatchMode::kPriority;
  so.priorities =
      PrioritiesFromOrder(ft.strategy.execution_order, ft.graph.num_slots());
  so.record_memory_timeline = true;
  const SimResult sim = Simulate(ft.graph, ft.strategy.placement, cluster, so);
  if (!WriteChromeTrace(ft.graph, sim, args.path)) {
    std::fprintf(stderr, "cannot write %s\n", args.path.c_str());
    return 1;
  }
  std::printf("wrote %s — load in chrome://tracing or Perfetto\n",
              args.path.c_str());
  WriteRunArtifacts(args, &ft.events);
  return 0;
}

int CmdSearchProfile(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);

  // Same setup as bench_search: a data-parallel bootstrap placement is
  // simulated once and profiled, so OS-DPOS runs against realistic cost
  // models — the search being profiled is the one `fastt run` would do each
  // pre-training round.
  auto dp = BuildDataParallel(spec.build, spec.name, batch,
                              cluster.num_devices(), args.scaling);
  const std::vector<DeviceId> placement = CanonicalDataParallelPlacement(dp);
  const Graph graph = std::move(dp.graph);
  SimOptions so;
  so.noise_cv = 0.03;
  so.seed = 11;
  const RunProfile profile =
      ExtractProfile(graph, Simulate(graph, placement, cluster, so));
  CompCostModel comp;
  CommCostModel comm;
  comp.AddProfile(profile);
  comm.AddProfile(profile);

  std::printf("search-profile: %s, batch %lld, %s, %d jobs\n",
              spec.name.c_str(), (long long)batch, cluster.ToString().c_str(),
              SearchJobs());

  // Heap telemetry rides along: with both the tracker and the tracer on,
  // the subsystem entry points emit mem/<tag>/live_bytes counter tracks
  // into the same trace, so memory shows up next to time in Perfetto.
  MemTracker& mem = MemTracker::Global();
  mem.Enable();
  Tracer& tracer = Tracer::Global();
  tracer.SetCurrentThreadName("search main");
  tracer.Enable();
  // With --profile the CPU sampler runs alongside the tracer on the same
  // epoch, so its sample tracks merge into the Chrome trace timeline.
  const bool do_profile = !args.profile_path.empty();
  if (do_profile) {
    RegisterProfiledThread("search main");
    CpuProfilerOptions popts;
    popts.hz = args.profile_hz;
    popts.epoch_ns = tracer.epoch_ns();
    if (!CpuProfiler::Global().Start(popts)) {
      std::fprintf(stderr, "cannot start CPU profiler\n");
      return 1;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  int probes = 0;
  size_t splits = 0;
  double makespan = 0.0;
  {
    FASTT_TRACE_SPAN("search/total");
    const OsDposResult os = OsDpos(graph, cluster, comp, comm);
    probes = os.probes;
    splits = os.splits.size();
    makespan = os.schedule.ft_exit;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (do_profile) CpuProfiler::Global().Stop();
  tracer.Disable();
  const TraceDump dump = tracer.Drain();
  const ProfileDump prof_dump =
      do_profile ? CpuProfiler::Global().Drain() : ProfileDump{};
  const TraceSummary summary = SummarizeTrace(dump);

  std::printf("OS-DPOS: %d split probes, %zu splits committed, predicted "
              "makespan %.3f ms\n\n",
              probes, splits, makespan * 1e3);
  std::fputs(RenderTraceSummary(summary).c_str(), stdout);

  double traced_s = 0.0;
  for (const TracePhase& p : summary.phases)
    if (p.name == "search/total") traced_s = p.total_s;
  std::printf("span tree covers %.1f%% of the measured %.4f s search "
              "wall-clock\n",
              wall_s > 0.0 ? 100.0 * traced_s / wall_s : 0.0, wall_s);

  const PoolStats pool = SearchPoolStats();
  if (pool.tasks > 0) {
    const double wait_s = static_cast<double>(pool.queue_wait_ns) * 1e-9;
    std::printf("pool: %d jobs, %llu batches, %llu worker tasks, queue wait "
                "%.3f ms total (%.1f us/task)\n",
                pool.jobs, (unsigned long long)pool.batches,
                (unsigned long long)pool.tasks, wait_s * 1e3,
                pool.tasks > 0 ? wait_s * 1e6 / double(pool.tasks) : 0.0);
  }

  const MemTagStats g_mem = mem.stats(MemTag::kGraph);
  const MemTagStats s_mem = mem.stats(MemTag::kSimEvents);
  const MemTagStats d_mem = mem.stats(MemTag::kDpos);
  std::printf("memory: total peak %s (%lld allocs) — graph peak %s, "
              "sim/events peak %s, dpos peak %s; see `fastt memstat`\n",
              HumanBytes(static_cast<double>(mem.total_peak_bytes())).c_str(),
              (long long)mem.total_allocs(),
              HumanBytes(static_cast<double>(g_mem.peak_bytes)).c_str(),
              HumanBytes(static_cast<double>(s_mem.peak_bytes)).c_str(),
              HumanBytes(static_cast<double>(d_mem.peak_bytes)).c_str());
  mem.Disable();

  if (do_profile) {
    const SymbolizedProfile prof = SymbolizeProfile(prof_dump);
    std::printf("\n");
    std::fputs(RenderProfileTable(prof, args.top_n).c_str(), stdout);
    std::ofstream pf(args.profile_path);
    if (!pf) {
      std::fprintf(stderr, "cannot write %s\n", args.profile_path.c_str());
      return 1;
    }
    pf << ProfileToJson(prof,
                        {{"command", "search-profile"},
                         {"model", spec.name},
                         {"gpus", StrFormat("%d", args.gpus)},
                         {"jobs", StrFormat("%d", SearchJobs())}})
       << "\n";
    std::printf("wrote cpu profile to %s\n", args.profile_path.c_str());
  }

  const std::string out_path =
      !args.path.empty() ? args.path : args.trace_search_path;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << (do_profile ? TraceToChromeJson(dump, prof_dump)
                       : TraceToChromeJson(dump))
        << "\n";
    std::printf("wrote search trace to %s — load in chrome://tracing or "
                "Perfetto\n",
                out_path.c_str());
  }
  WriteRunArtifacts(args, nullptr);
  return 0;
}

int CmdMemstat(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("memstat: %s, batch %lld, %s, %d jobs\n\n", spec.name.c_str(),
              (long long)batch, cluster.ToString().c_str(), SearchJobs());

  MemTracker& mem = MemTracker::Global();
  mem.Enable();

  // One pre-training round, split into its phases. Peaks are reset at each
  // phase boundary, so a phase's peak_bytes is its own high-water mark (on
  // top of whatever the previous phases left live).
  struct Phase {
    std::string name;
    std::vector<MemTagStats> before;
    std::vector<MemTagStats> after;
    int64_t total_peak = 0;
    int64_t total_live = 0;
  };
  std::vector<Phase> phases;
  auto run_phase = [&](const char* name, auto&& body) {
    Phase p;
    p.name = name;
    mem.ResetPeaks();
    p.before = mem.Snapshot();
    body();
    p.after = mem.Snapshot();
    p.total_peak = mem.total_peak_bytes();
    p.total_live = mem.total_live_bytes();
    phases.push_back(std::move(p));
  };

  Graph graph;
  std::vector<DeviceId> placement;
  CompCostModel comp;
  CommCostModel comm;
  OsDposResult os;
  run_phase("graph/build", [&] {
    auto dp = BuildDataParallel(spec.build, spec.name, batch,
                                cluster.num_devices(), args.scaling);
    placement = CanonicalDataParallelPlacement(dp);
    graph = std::move(dp.graph);
  });
  run_phase("profile", [&] {
    SimOptions so;
    so.noise_cv = 0.03;
    so.seed = 11;
    const RunProfile profile =
        ExtractProfile(graph, Simulate(graph, placement, cluster, so));
    comp.AddProfile(profile);
    comm.AddProfile(profile);
  });
  run_phase("search", [&] { os = OsDpos(graph, cluster, comp, comm); });
  run_phase("final-sim", [&] {
    Simulate(os.graph, os.schedule.strategy.placement, cluster, SimOptions{});
  });
  mem.Disable();

  const auto active = [](const MemTagStats& a, const MemTagStats& b) {
    return a.allocs != b.allocs || a.frees != b.frees || b.peak_bytes > 0;
  };
  for (const Phase& p : phases) {
    std::printf("phase %s (peak %s, live after %s)\n", p.name.c_str(),
                HumanBytes(static_cast<double>(p.total_peak)).c_str(),
                HumanBytes(static_cast<double>(p.total_live)).c_str());
    TablePrinter table(
        {"subsystem", "peak", "live", "allocs", "frees", "alloc bytes"});
    for (size_t t = 0; t < kNumMemTags; ++t) {
      const MemTagStats& a = p.before[t];
      const MemTagStats& b = p.after[t];
      if (!active(a, b)) continue;
      table.AddRow({MemTagName(static_cast<MemTag>(t)),
                    HumanBytes(static_cast<double>(b.peak_bytes)),
                    HumanBytes(static_cast<double>(b.live_bytes)),
                    StrFormat("%lld", (long long)(b.allocs - a.allocs)),
                    StrFormat("%lld", (long long)(b.frees - a.frees)),
                    HumanBytes(
                        static_cast<double>(b.alloc_bytes - a.alloc_bytes))});
    }
    table.Print();
    std::printf("\n");
  }

  // Whole-round rollup: cumulative counts from the final snapshot; peaks are
  // per-phase maxima (the boundaries reset them).
  const std::vector<MemTagStats>& final_stats = phases.back().after;
  std::vector<int64_t> tag_peak(kNumMemTags, 0);
  int64_t run_peak = 0;
  for (const Phase& p : phases) {
    run_peak = std::max(run_peak, p.total_peak);
    for (size_t t = 0; t < kNumMemTags; ++t)
      tag_peak[t] = std::max(tag_peak[t], p.after[t].peak_bytes);
  }
  std::printf("whole round (peak %s)\n",
              HumanBytes(static_cast<double>(run_peak)).c_str());
  TablePrinter total(
      {"subsystem", "peak", "live", "allocs", "frees", "alloc bytes"});
  for (size_t t = 0; t < kNumMemTags; ++t) {
    const MemTagStats& s = final_stats[t];
    if (s.allocs == 0 && s.frees == 0) continue;
    total.AddRow({MemTagName(static_cast<MemTag>(t)),
                  HumanBytes(static_cast<double>(tag_peak[t])),
                  HumanBytes(static_cast<double>(s.live_bytes)),
                  StrFormat("%lld", (long long)s.allocs),
                  StrFormat("%lld", (long long)s.frees),
                  HumanBytes(static_cast<double>(s.alloc_bytes))});
  }
  total.Print();

  // Greppable one-liner (the ctest smoke pins nonzero graph + sim/events).
  const MemTagStats& gs = final_stats[static_cast<size_t>(MemTag::kGraph)];
  const MemTagStats& ss = final_stats[static_cast<size_t>(MemTag::kSimEvents)];
  std::printf("\nmemstat summary: graph allocs=%lld peak=%lld; sim/events "
              "allocs=%lld peak=%lld; total peak=%lld\n",
              (long long)gs.allocs,
              (long long)tag_peak[static_cast<size_t>(MemTag::kGraph)],
              (long long)ss.allocs,
              (long long)tag_peak[static_cast<size_t>(MemTag::kSimEvents)],
              (long long)run_peak);

  // The fastt-memstat/1 document doubles as --json output and as the
  // "memstat" section of a --report bundle, so it is rendered once here.
  std::string memstat_json;
  if (!args.json_path.empty() || !args.report_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("fastt-memstat/1");
    w.Key("model").String(spec.name);
    w.Key("batch").Int(batch);
    w.Key("gpus").Int(cluster.num_devices());
    w.Key("run_peak_bytes").Int(run_peak);
    w.Key("phases").BeginArray();
    for (const Phase& p : phases) {
      w.BeginObject();
      w.Key("name").String(p.name);
      w.Key("total_peak_bytes").Int(p.total_peak);
      w.Key("total_live_bytes").Int(p.total_live);
      w.Key("tags").BeginObject();
      for (size_t t = 0; t < kNumMemTags; ++t) {
        const MemTagStats& a = p.before[t];
        const MemTagStats& b = p.after[t];
        if (!active(a, b)) continue;
        w.Key(MemTagName(static_cast<MemTag>(t))).BeginObject();
        w.Key("peak_bytes").Int(b.peak_bytes);
        w.Key("live_bytes").Int(b.live_bytes);
        w.Key("allocs").Int(b.allocs - a.allocs);
        w.Key("frees").Int(b.frees - a.frees);
        w.Key("alloc_bytes").Int(b.alloc_bytes - a.alloc_bytes);
        w.EndObject();
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.Key("totals").BeginObject();
    for (size_t t = 0; t < kNumMemTags; ++t) {
      const MemTagStats& s = final_stats[t];
      if (s.allocs == 0 && s.frees == 0) continue;
      w.Key(MemTagName(static_cast<MemTag>(t))).BeginObject();
      w.Key("peak_bytes").Int(tag_peak[t]);
      w.Key("live_bytes").Int(s.live_bytes);
      w.Key("allocs").Int(s.allocs);
      w.Key("frees").Int(s.frees);
      w.Key("alloc_bytes").Int(s.alloc_bytes);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    memstat_json = w.str();
  }
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << memstat_json << "\n";
    std::printf("wrote memstat JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back({"memstat", memstat_json});
  WriteRunArtifacts(args, nullptr, sections);
  return 0;
}

int CmdExplain(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("placement provenance: %s, batch %lld, %s\n", spec.name.c_str(),
              (long long)batch, cluster.ToString().c_str());
  CalculatorOptions options;
  options.record_provenance = true;
  const auto ft = RunFastT(spec.build, spec.name, batch, args.scaling,
                           cluster, options);
  std::printf("committed strategy: %zu placement decisions, %zu split trials "
              "recorded\n\n",
              ft.provenance.size(), ft.split_trials.size());
  std::fputs(ExplainOps(ft, args.op).c_str(), stdout);
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << ProvenanceToJson(ft.provenance, ft.split_trials) << "\n";
    std::printf("\nwrote provenance JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back(
        {"provenance", ProvenanceToJson(ft.provenance, ft.split_trials)});
  WriteRunArtifacts(args, &ft.events, sections);
  return 0;
}

int CmdCalibrate(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  std::printf("cost-model calibration: %s, batch %lld, %s\n\n",
              spec.name.c_str(), (long long)batch,
              cluster.ToString().c_str());
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, batch, args.scaling,
                           cluster, options);
  std::fputs(RenderCalibrationReport(ft.calibration).c_str(), stdout);
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << CalibrationToJson(spec.name, ft.calibration) << "\n";
    std::printf("\nwrote calibration JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back(
        {"calibration", CalibrationToJson(spec.name, ft.calibration)});
  WriteRunArtifacts(args, &ft.events, sections);
  return 0;
}

int CmdVerify(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);

  // The base graph every strategy for this model refers to: the
  // data-parallel replication (what StrategyCalculator hands OS-DPOS).
  DataParallelGraph dp = BuildDataParallel(spec.build, spec.name, batch,
                                           cluster.num_devices(),
                                           args.scaling);
  const std::vector<DeviceId> dp_placement =
      CanonicalDataParallelPlacement(dp);
  Graph graph = std::move(dp.graph);

  CompCostModel comp;
  CommCostModel comm;
  Strategy strategy;
  if (!args.strategy_path.empty()) {
    std::ifstream in(args.strategy_path);
    if (!in) {
      std::fprintf(stderr,
                   "fastt: cannot read strategy file \"%s\" — check the "
                   "--strategy path\n",
                   args.strategy_path.c_str());
      return 2;
    }
    try {
      strategy = DeserializeStrategy(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "fastt: cannot parse strategy file \"%s\": %s — expected "
                   "the format SerializeStrategy writes\n",
                   args.strategy_path.c_str(), e.what());
      return 2;
    }
    // Re-apply the recorded split list so slot ids in the strategy line up
    // with the rewritten graph. Unknown or unsplittable names are left for
    // the verifier to report (strategy.split.op) instead of aborting here.
    for (const SplitDecision& s : strategy.splits) {
      const OpId id = graph.FindOp(s.op_name);
      if (id == kInvalidOp || !CanSplit(graph, id, s.dim, s.num_splits))
        continue;
      SplitOperation(graph, id, s.dim, s.num_splits);
    }
    std::printf("verify: %s, batch %lld, %s, strategy %s (%zu splits)\n",
                spec.name.c_str(), (long long)batch,
                cluster.ToString().c_str(), args.strategy_path.c_str(),
                strategy.splits.size());
  } else {
    // No file: verify the strategy a pre-training round would compute —
    // bootstrap-profile the DP placement once, then search with OS-DPOS.
    SimOptions so;
    so.noise_cv = 0.03;
    so.seed = 11;
    const RunProfile profile =
        ExtractProfile(graph, Simulate(graph, dp_placement, cluster, so));
    comp.AddProfile(profile);
    comm.AddProfile(profile);
    OsDposResult os = OsDpos(graph, cluster, comp, comm);
    graph = std::move(os.graph);
    strategy = std::move(os.schedule.strategy);
    strategy.splits = std::move(os.splits);
    std::printf("verify: %s, batch %lld, %s, OS-DPOS strategy (%zu splits, "
                "%d probes)\n",
                spec.name.c_str(), (long long)batch,
                cluster.ToString().c_str(), strategy.splits.size(),
                os.probes);
  }

  const VerifyResult result =
      VerifyStrategy(graph, strategy, cluster, &comm, VerifierOptions{});
  std::fputs(RenderDiagnostics(graph, result).c_str(), stdout);
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 2;
    }
    out << DiagnosticsToJson(graph, result) << "\n";
    std::printf("wrote diagnostics JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back({"verify", DiagnosticsToJson(graph, result)});
  WriteRunArtifacts(args, nullptr, sections);
  return result.ok() ? 0 : 1;
}

int CmdArena(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  const auto& roster = RegisteredSearchers();
  std::printf("searcher arena: %s, batch %lld, %s — %zu searchers, "
              "%d ms budget, %d jobs\n\n",
              spec.name.c_str(), (long long)batch,
              cluster.ToString().c_str(), roster.size(), args.budget_ms,
              SearchJobs());

  PortfolioOptions options;
  options.budget_s = static_cast<double>(args.budget_ms) / 1e3;
  const PortfolioResult result = PortfolioSearch(
      roster, spec.build, spec.name, batch, cluster, options);

  TablePrinter table({"searcher", "family", "iteration", "resim", "evals",
                      "wall", "verify", "stop", ""});
  for (const PortfolioEntry& e : result.entries) {
    const bool finite = std::isfinite(e.iteration_s);
    table.AddRow(
        {e.searcher, e.family,
         finite ? StrFormat("%.3f ms", e.iteration_s * 1e3) : "OOM",
         std::isfinite(e.resim_s) ? StrFormat("%.3f ms", e.resim_s * 1e3)
                                  : "-",
         StrFormat("%d", e.evaluations), StrFormat("%.2f s", e.wall_s),
         e.verified ? "PASS" : StrFormat("%d errors", e.verify_errors),
         e.stop_reason, e.winner ? "<- winner" : ""});
  }
  table.Print();

  if (result.winner < 0) {
    std::printf("\nno searcher produced a verified strategy\n");
    WriteRunArtifacts(args, &result.events);
    return 1;
  }
  const PortfolioEntry& winner =
      result.entries[static_cast<size_t>(result.winner)];
  std::printf("\nwinner: %s (%s), %.3f ms/iteration, %zu splits, "
              "%zu-op order\n",
              winner.searcher.c_str(), winner.family.c_str(),
              result.iteration_s * 1e3, result.strategy.splits.size(),
              result.strategy.execution_order.size());
  std::fputs(RenderDiagnostics(result.graph, result.winner_verify).c_str(),
             stdout);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 2;
    }
    out << PortfolioToJson(spec.name, batch, cluster, result) << "\n";
    std::printf("wrote arena JSON to %s\n", args.json_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back(
        {"arena", PortfolioToJson(spec.name, batch, cluster, result)});
  WriteRunArtifacts(args, &result.events, sections);
  return 0;
}

// `fastt report` — the full workflow inside a fresh TelemetryContext: the
// tracer and heap tracker run for the whole workflow, every instrumented
// call site (including pool workers) lands in the request-scoped context,
// and the richest fastt-report/1 bundle is written at the end. This is the
// artifact a `fastt serve` request would return.
int CmdReport(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);
  const std::string out_path = !args.path.empty()          ? args.path
                               : !args.report_path.empty() ? args.report_path
                                                           : "report.json";
  std::printf("report: %s, batch %lld, %s, %d jobs\n", spec.name.c_str(),
              (long long)batch, cluster.ToString().c_str(), SearchJobs());

  TelemetryContext context;
  context.tracer().SetCurrentThreadName("report main");
  context.tracer().Enable();
  // The report workflow doubles as a profiling window: the CPU sampler runs
  // across the whole run and lands as a top-N frame table plus a "profile"
  // section in the bundle. Start can fail (e.g. an outer profiler already
  // owns the timers); the report just goes without in that case.
  RegisterProfiledThread("report main");
  CpuProfilerOptions popts;
  popts.hz = args.profile_hz;
  popts.epoch_ns = context.tracer().epoch_ns();
  const bool profiling = CpuProfiler::Global().Start(popts);
  MemTracker& mem = context.memtrack();
  mem.Enable();

  CalculatorResult ft;
  VerifyResult verify;
  {
    TelemetryScope scope(context);
    CalculatorOptions options;
    ft = RunFastT(spec.build, spec.name, batch, args.scaling, cluster,
                  options);
    verify =
        VerifyStrategy(ft.graph, ft.strategy, cluster, &ft.comm,
                       VerifierOptions{});
    PublishSearchPoolMetrics(context.metrics());
    PublishMemMetrics(context.metrics());
  }
  mem.Disable();
  if (profiling) CpuProfiler::Global().Stop();
  context.tracer().Disable();
  const TraceSummary summary = SummarizeTrace(context.tracer().Drain());
  SymbolizedProfile prof;
  if (profiling) prof = SymbolizeProfile(CpuProfiler::Global().Drain());

  std::printf("  %.1f samples/s, %d rounds, %zu splits; verifier: %d "
              "errors, %d warnings\n",
              SamplesPerSecond(ft), ft.rounds, ft.strategy.splits.size(),
              verify.errors, verify.warnings);
  if (profiling && prof.samples_total > 0) {
    std::printf("\n");
    std::fputs(RenderProfileTable(prof, args.top_n).c_str(), stdout);
  }

  RunReport report("report", spec.name);
  report.SetParam("gpus", cluster.num_devices());
  report.SetParam("servers", args.servers);
  report.SetParam("batch", batch);
  report.SetParam("jobs", SearchJobs());
  report.SetMetrics(context.metrics());
  report.SetEvents(ft.events);
  report.SetTraceSummary(summary);
  if (!ft.calibration.empty())
    report.AddSection("calibration",
                      CalibrationToJson(spec.name, ft.calibration));
  report.AddSection("verify", DiagnosticsToJson(ft.graph, verify));
  {
    // Whole-run heap rollup (per-phase detail lives in `fastt memstat`).
    JsonWriter w;
    w.BeginObject();
    w.Key("total_peak_bytes").Int(mem.total_peak_bytes());
    w.Key("total_allocs").Int(mem.total_allocs());
    w.Key("tags").BeginObject();
    for (size_t t = 0; t < kNumMemTags; ++t) {
      const MemTagStats s = mem.stats(static_cast<MemTag>(t));
      if (s.allocs == 0 && s.frees == 0) continue;
      w.Key(MemTagName(static_cast<MemTag>(t))).BeginObject();
      w.Key("peak_bytes").Int(s.peak_bytes);
      w.Key("allocs").Int(s.allocs);
      w.Key("alloc_bytes").Int(s.alloc_bytes);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    report.AddSection("memstat", w.str());
  }
  if (profiling && prof.samples_total > 0)
    report.AddSection(
        "profile",
        ProfileToJson(prof, {{"command", "report"}, {"model", spec.name}}));
  if (!report.Write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote run report to %s\n", out_path.c_str());
  return 0;
}

int CmdBenchDiff(const Args& args) {
  BenchHistoryDoc old_doc;
  BenchHistoryDoc new_doc;
  std::string error;
  if (!ReadBenchHistoryDoc(args.model, &old_doc, &error)) {
    std::fprintf(stderr, "bench-diff: %s: %s\n", args.model.c_str(),
                 error.c_str());
    return 2;
  }
  if (!ReadBenchHistoryDoc(args.path, &new_doc, &error)) {
    std::fprintf(stderr, "bench-diff: %s: %s\n", args.path.c_str(),
                 error.c_str());
    return 2;
  }
  const BenchDiffResult result = DiffBenchReports(old_doc, new_doc, args.diff);
  std::fputs(RenderBenchDiff(result, args.diff).c_str(), stdout);
  return result.hard_regressions > 0 ? 1 : 0;
}

// `fastt profile` — run the OS-DPOS search in a loop under the sampling CPU
// profiler until --seconds of wall clock accumulates, then fold the stacks.
// This answers "where do the cycles go" below the span level: the tracer
// gives phase totals, the sampler gives the hot frames inside them.
int CmdProfile(const Args& args) {
  const ModelSpec* specp = RequireModel(args.model);
  if (specp == nullptr) return 2;
  const ModelSpec& spec = *specp;
  const int64_t batch = args.batch > 0 ? args.batch : spec.strong_batch;
  const Cluster cluster = MakeCluster(args);

  // Same bootstrap as search-profile: calibrate the cost models against one
  // simulated data-parallel run so the profiled search is the real one.
  auto dp = BuildDataParallel(spec.build, spec.name, batch,
                              cluster.num_devices(), args.scaling);
  const std::vector<DeviceId> placement = CanonicalDataParallelPlacement(dp);
  const Graph graph = std::move(dp.graph);
  SimOptions so;
  so.noise_cv = 0.03;
  so.seed = 11;
  const RunProfile profile =
      ExtractProfile(graph, Simulate(graph, placement, cluster, so));
  CompCostModel comp;
  CommCostModel comm;
  comp.AddProfile(profile);
  comm.AddProfile(profile);

  std::printf("profile: %s, batch %lld, %s, %d jobs, %d Hz for >= %.1f s\n",
              spec.name.c_str(), (long long)batch, cluster.ToString().c_str(),
              SearchJobs(), args.profile_hz, args.profile_seconds);

  // The tracer must run for sample->span attribution; its own dump is
  // discarded here (use search-profile for the timeline view).
  Tracer& tracer = Tracer::Global();
  tracer.SetCurrentThreadName("search main");
  tracer.Enable();
  RegisterProfiledThread("search main");
  CpuProfilerOptions popts;
  popts.hz = args.profile_hz;
  popts.epoch_ns = tracer.epoch_ns();
  if (!CpuProfiler::Global().Start(popts)) {
    std::fprintf(stderr, "cannot start CPU profiler\n");
    return 1;
  }
  // One small-model search is sub-millisecond; repeat until the wall-clock
  // floor so the sampler sees enough timer periods regardless of model size.
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  int probes = 0;
  size_t splits = 0;
  double wall_s = 0.0;
  do {
    FASTT_TRACE_SPAN("profile/search");
    const OsDposResult os = OsDpos(graph, cluster, comp, comm);
    probes = os.probes;
    splits = os.splits.size();
    ++reps;
    wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (wall_s < args.profile_seconds);
  CpuProfiler::Global().Stop();
  tracer.Disable();
  tracer.Drain();  // spans served their purpose (attribution); drop them

  const ProfileDump dump = CpuProfiler::Global().Drain();
  const SymbolizedProfile prof = SymbolizeProfile(dump);
  std::printf("%d search repetitions (%d split probes, %zu splits each) in "
              "%.2f s\n\n",
              reps, probes, splits, wall_s);
  std::fputs(RenderProfileTable(prof, args.top_n).c_str(), stdout);
  std::printf("span-attributed: %.1f%% of %llu samples\n",
              prof.samples_total > 0
                  ? 100.0 * static_cast<double>(prof.span_attributed) /
                        static_cast<double>(prof.samples_total)
                  : 0.0,
              (unsigned long long)prof.samples_total);

  const std::map<std::string, std::string> params = {
      {"command", "profile"},
      {"model", spec.name},
      {"gpus", StrFormat("%d", args.gpus)},
      {"batch", StrFormat("%lld", (long long)batch)},
      {"jobs", StrFormat("%d", SearchJobs())},
      {"reps", StrFormat("%d", reps)}};
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << ProfileToJson(prof, params) << "\n";
    std::printf("wrote cpu profile to %s\n", args.json_path.c_str());
  }
  if (!args.folded_path.empty()) {
    std::ofstream out(args.folded_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.folded_path.c_str());
      return 1;
    }
    out << ProfileToFolded(prof);
    std::printf("wrote collapsed stacks to %s — feed to flamegraph.pl or "
                "speedscope\n",
                args.folded_path.c_str());
  }
  ReportSections sections;
  if (!args.report_path.empty())
    sections.push_back({"profile", ProfileToJson(prof, params)});
  WriteRunArtifacts(args, nullptr, sections);
  return 0;
}

int CmdProfDiff(const Args& args) {
  ProfDoc old_doc;
  ProfDoc new_doc;
  std::string error;
  if (!ReadProfDoc(args.model, &old_doc, &error)) {
    std::fprintf(stderr, "prof-diff: %s: %s\n", args.model.c_str(),
                 error.c_str());
    return 2;
  }
  if (!ReadProfDoc(args.path, &new_doc, &error)) {
    std::fprintf(stderr, "prof-diff: %s: %s\n", args.path.c_str(),
                 error.c_str());
    return 2;
  }
  const ProfDiffResult result = DiffProfiles(old_doc, new_doc, args.prof_diff);
  std::fputs(RenderProfDiff(result, args.prof_diff).c_str(), stdout);
  return result.hard_regressions > 0 ? 1 : 0;
}

// One usage line per command, keyed by name, so misuse of a known command
// prints that command's synopsis instead of the full banner.
struct CommandSpec {
  const char* name;
  const char* usage;
};

constexpr CommandSpec kCommands[] = {
    {"models", "fastt models"},
    {"run", "fastt run <model> [--gpus N] [--servers S] [--batch B] [--weak]"},
    {"compare", "fastt compare <model> [--gpus N] [--servers S] [--batch B]"},
    {"export", "fastt export <model> <graph.txt> [--batch B]"},
    {"trace", "fastt trace <model> <trace.json> [--gpus N]"},
    {"analyze",
     "fastt analyze <model> [--gpus N] [--servers S] [--batch B] [--json F]"},
    {"explain",
     "fastt explain <model> --op <name> [--gpus N] [--servers S] [--batch B] "
     "[--json F]"},
    {"calibrate",
     "fastt calibrate <model> [--gpus N] [--servers S] [--batch B] "
     "[--json F]"},
    {"search-profile",
     "fastt search-profile <model> [trace.json] [--gpus N] [--jobs N]"},
    {"memstat",
     "fastt memstat <model> [--gpus N] [--batch B] [--jobs N] [--json F]"},
    {"bench-diff",
     "fastt bench-diff <old.json> <new.json> [--threshold T] [--hard-factor "
     "F] [--min-repeats R]"},
    {"profile",
     "fastt profile <model> [--hz N] [--seconds S] [--gpus N] [--jobs N] "
     "[--json F] [--folded F] [--top N]"},
    {"prof-diff",
     "fastt prof-diff <old.json> <new.json> [--threshold PP] [--hard-factor "
     "F] [--min-samples N]"},
    {"verify",
     "fastt verify <model> [--strategy f] [--gpus N] [--servers S] "
     "[--batch B] [--json F]"},
    {"arena",
     "fastt arena <model> [--gpus N] [--servers S] [--batch B] "
     "[--budget-ms T] [--jobs N] [--json F]"},
    {"report",
     "fastt report <model> [report.json] [--gpus N] [--servers S] "
     "[--batch B] [--jobs N]"},
};

int Usage() {
  std::fprintf(stderr, "usage:\n");
  for (const CommandSpec& c : kCommands)
    std::fprintf(stderr, "  %s\n", c.usage);
  std::fprintf(stderr,
               "options: every command accepts --jobs N (parallel search;\n"
               "         same strategy as --jobs 1), --metrics <out.json>,\n"
               "         --report <out.json> (fastt-report/1 bundle),\n"
               "         --openmetrics <out.txt> (Prometheus exposition),\n"
               "         --blackbox <out.json> (crash dump on fatal signal),\n"
               "         --log-level error|warn|info|debug (or\n"
               "         FASTT_LOG_LEVEL), --trace-search <out.json>\n"
               "         (Chrome trace of the search; also via\n"
               "         FASTT_TRACE_SEARCH=path) and --profile <out.json>\n"
               "         (sampling CPU profile of the whole command);\n"
               "         `fastt --version` prints build provenance\n");
  return 2;
}

// Misused known command: print its synopsis only.
int CommandUsage(const std::string& command) {
  for (const CommandSpec& c : kCommands) {
    if (command == c.name) {
      std::fprintf(stderr, "usage: %s\n", c.usage);
      return 2;
    }
  }
  return Usage();
}

int Dispatch(const Args& args) {
  if (args.command.empty()) return Usage();
  if (args.command == "models") {
    const int rc = CmdModels();
    WriteRunArtifacts(args, nullptr);
    return rc;
  }
  if (args.command == "run")
    return args.model.empty() ? CommandUsage(args.command) : CmdRun(args);
  if (args.command == "analyze")
    return args.model.empty() ? CommandUsage(args.command) : CmdAnalyze(args);
  if (args.command == "explain")
    return args.model.empty() ? CommandUsage(args.command) : CmdExplain(args);
  if (args.command == "calibrate")
    return args.model.empty() ? CommandUsage(args.command)
                              : CmdCalibrate(args);
  if (args.command == "compare") {
    if (args.model.empty()) return CommandUsage(args.command);
    const int rc = CmdCompare(args);
    WriteRunArtifacts(args, nullptr);
    return rc;
  }
  if (args.command == "export") {
    if (args.model.empty() || args.path.empty())
      return CommandUsage(args.command);
    const int rc = CmdExport(args);
    WriteRunArtifacts(args, nullptr);
    return rc;
  }
  if (args.command == "trace") {
    if (args.model.empty() || args.path.empty())
      return CommandUsage(args.command);
    return CmdTrace(args);
  }
  if (args.command == "search-profile")
    return args.model.empty() ? CommandUsage(args.command)
                              : CmdSearchProfile(args);
  if (args.command == "memstat")
    return args.model.empty() ? CommandUsage(args.command) : CmdMemstat(args);
  if (args.command == "verify")
    return args.model.empty() ? CommandUsage(args.command) : CmdVerify(args);
  if (args.command == "arena")
    return args.model.empty() ? CommandUsage(args.command) : CmdArena(args);
  if (args.command == "report")
    return args.model.empty() ? CommandUsage(args.command) : CmdReport(args);
  if (args.command == "bench-diff") {
    if (args.model.empty() || args.path.empty())
      return CommandUsage(args.command);
    return CmdBenchDiff(args);
  }
  if (args.command == "profile")
    return args.model.empty() ? CommandUsage(args.command) : CmdProfile(args);
  if (args.command == "prof-diff") {
    if (args.model.empty() || args.path.empty())
      return CommandUsage(args.command);
    return CmdProfDiff(args);
  }
  std::fprintf(stderr, "fastt: unknown command \"%s\"\n",
               args.command.c_str());
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.command == "--version" || args.command == "version") {
    std::printf("fastt %s\n", BuildInfoLine().c_str());
    return 0;
  }
  if (!args.log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(args.log_level, &level)) {
      std::fprintf(stderr,
                   "fastt: bad --log-level \"%s\" — use error, warn, info "
                   "or debug\n",
                   args.log_level.c_str());
      return 2;
    }
    SetLogThreshold(level);
  }
  if (!args.blackbox_path.empty()) InstallBlackbox(args.blackbox_path);
  if (args.jobs > 0) SetSearchJobs(args.jobs);
  if (args.trace_search_path.empty()) {
    if (const char* env = std::getenv("FASTT_TRACE_SEARCH");
        env != nullptr && *env != '\0')
      args.trace_search_path = env;
  }
  // search-profile owns the tracer itself (it enables, drains and writes);
  // for every other command --trace-search records the whole run's search
  // activity and the epilogue below writes it out.
  const bool trace_here =
      !args.trace_search_path.empty() && args.command != "search-profile";
  if (trace_here) {
    Tracer::Global().SetCurrentThreadName("search main");
    Tracer::Global().Enable();
  }
  // Likewise --profile: profile, prof-diff, search-profile and report manage
  // the sampler themselves; every other command is sampled whole here.
  const bool profile_here =
      !args.profile_path.empty() && args.command != "profile" &&
      args.command != "prof-diff" && args.command != "search-profile" &&
      args.command != "report";
  if (profile_here) {
    if (!trace_here) {
      // Sample->span attribution needs live spans even though this tracer
      // dump is never written out.
      Tracer::Global().SetCurrentThreadName("search main");
      Tracer::Global().Enable();
    }
    RegisterProfiledThread("main");
    CpuProfilerOptions popts;
    popts.hz = args.profile_hz;
    popts.epoch_ns = Tracer::Global().epoch_ns();
    CpuProfiler::Global().Start(popts);
  }
  int rc = 0;
  try {
    rc = Dispatch(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  ProfileDump prof_dump;
  if (profile_here) {
    CpuProfiler::Global().Stop();
    prof_dump = CpuProfiler::Global().Drain();
  }
  if (trace_here) {
    Tracer::Global().Disable();
    const TraceDump dump = Tracer::Global().Drain();
    std::ofstream out(args.trace_search_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   args.trace_search_path.c_str());
      return rc != 0 ? rc : 1;
    }
    out << (profile_here ? TraceToChromeJson(dump, prof_dump)
                         : TraceToChromeJson(dump))
        << "\n";
    std::printf("wrote search trace to %s (%zu spans)\n",
                args.trace_search_path.c_str(), dump.spans.size());
  } else if (profile_here) {
    Tracer::Global().Disable();
    Tracer::Global().Drain();
  }
  if (profile_here) {
    const SymbolizedProfile prof = SymbolizeProfile(prof_dump);
    std::ofstream out(args.profile_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.profile_path.c_str());
      return rc != 0 ? rc : 1;
    }
    out << ProfileToJson(prof, {{"command", args.command},
                                {"model", args.model}})
        << "\n";
    std::printf(
        "wrote cpu profile to %s (%llu samples, %.1f%% span-attributed)\n",
        args.profile_path.c_str(), (unsigned long long)prof.samples_total,
        prof.samples_total > 0
            ? 100.0 * static_cast<double>(prof.span_attributed) /
                  static_cast<double>(prof.samples_total)
            : 0.0);
  }
  return rc;
}
