// Strategy explorer: run any zoo model on any simulated cluster under any
// strategy and inspect the result — per-device op counts and busy time,
// compute/memcpy breakdown, splits, memory peaks, and optionally a
// Graphviz dump of the placed graph.
//
//   usage: strategy_explorer [model] [gpus] [strategy] [--dot out.dot]
//                             [--trace out.json]
//     model     one of the nine zoo names            (default vgg19)
//     gpus      device count on one server           (default 4)
//     strategy  dp | fastt | mp | random | anneal    (default fastt)
//
//   $ ./build/examples/strategy_explorer vgg19 4 fastt
//   $ ./build/examples/strategy_explorer bert_large 2 mp --dot bert.dot
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "baselines/searchers.h"
#include "core/model_parallel.h"
#include "core/strategy_calculator.h"
#include "graph/dot.h"
#include "models/model_zoo.h"
#include "sim/trace.h"
#include "util/strings.h"

using namespace fastt;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "vgg19";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string strategy = argc > 3 ? argv[3] : "fastt";
  std::string dot_path, trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dot_path = argv[i + 1];
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }

  const ModelSpec& model = FindModel(model_name);
  const Cluster cluster = Cluster::SingleServer(gpus);
  std::printf("%s on %s, strategy=%s, global batch %lld\n\n",
              model.name.c_str(), cluster.ToString().c_str(),
              strategy.c_str(), (long long)model.strong_batch);

  Graph graph;
  std::vector<DeviceId> placement;
  std::vector<int64_t> priorities;
  DispatchMode dispatch = DispatchMode::kRandom;
  std::vector<SplitDecision> splits;

  if (strategy == "fastt") {
    CalculatorOptions options;
    auto ft = RunFastT(model.build, model.name, model.strong_batch,
                       Scaling::kStrong, cluster, options);
    graph = std::move(ft.graph);
    placement = ft.strategy.placement;
    priorities =
        PrioritiesFromOrder(ft.strategy.execution_order, graph.num_slots());
    dispatch = DispatchMode::kPriority;
    splits = ft.strategy.splits;
  } else if (strategy == "dp") {
    auto dp = BuildDataParallel(model.build, model.name, model.strong_batch,
                                gpus, Scaling::kStrong);
    placement = CanonicalDataParallelPlacement(dp);
    graph = std::move(dp.graph);
  } else if (strategy == "mp") {
    graph = Graph(model.name);
    model.build(graph, "", model.strong_batch);
    placement = GreedyModelParallelPlacement(graph, cluster);
  } else if (strategy == "random") {
    SearchOptions options;
    options.budget = 50;
    auto r = RandomSearchPlacement(model.build, model.name,
                                   model.strong_batch, cluster, options);
    graph = std::move(r.graph);
    placement = std::move(r.placement);
  } else if (strategy == "anneal") {
    SearchOptions options;
    options.budget = 150;
    auto r = AnnealingSearch(model.build, model.name, model.strong_batch,
                             cluster, options);
    graph = std::move(r.graph);
    placement = std::move(r.placement);
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 1;
  }

  SimOptions so;
  so.dispatch = dispatch;
  so.priorities = priorities;
  const SimResult sim = Simulate(graph, placement, cluster, so);

  std::printf("per-iteration: %s   (%.1f samples/s)\n",
              HumanSeconds(sim.makespan).c_str(),
              model.strong_batch / (sim.makespan + kSessionOverheadS));
  std::printf("computation:   %s   memcpy: %s   transfers: %zu\n",
              HumanSeconds(sim.total_compute_s).c_str(),
              HumanSeconds(sim.total_memcpy_s).c_str(),
              sim.transfers.size());
  if (sim.oom) std::printf("!! OUT OF MEMORY on %zu device(s)\n",
                           sim.oom_devices.size());

  std::map<DeviceId, int> counts;
  for (OpId id : graph.LiveOps())
    ++counts[placement[static_cast<size_t>(id)]];
  std::printf("\n%-8s %8s %12s %12s\n", "device", "ops", "busy", "peak mem");
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    std::printf("GPU %-4d %8d %12s %12s\n", d, counts[d],
                HumanSeconds(sim.device_busy_s[static_cast<size_t>(d)])
                    .c_str(),
                HumanBytes(static_cast<double>(
                               sim.peak_memory[static_cast<size_t>(d)]))
                    .c_str());
  }
  if (!splits.empty()) {
    std::printf("\nsplits:\n");
    for (const auto& s : splits)
      std::printf("  %s  %s x%d\n", s.op_name.c_str(), SplitDimName(s.dim),
                  s.num_splits);
  }
  if (!trace_path.empty()) {
    if (WriteChromeTrace(graph, sim, trace_path))
      std::printf("\nwrote %s (load in chrome://tracing or Perfetto)\n",
                  trace_path.c_str());
  }
  if (!dot_path.empty()) {
    std::vector<int> colors(placement.begin(), placement.end());
    std::ofstream out(dot_path);
    out << ExportDot(graph, colors);
    std::printf("\nwrote %s (%d nodes)\n", dot_path.c_str(),
                graph.num_live_ops());
  }
  return 0;
}
