// Training a model that does NOT fit on a single GPU (the paper's Table 3
// scenario): BERT-large at growing global batch sizes. Data parallelism can
// only scale the batch as far as one replica fits; FastT falls back to a
// model-parallel bootstrap and finds placements that train batch sizes DP
// cannot touch — no manual placement required.
//
//   $ ./build/examples/bert_large_batch
#include <cstdio>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"

using namespace fastt;

int main() {
  const ModelSpec& model = FindModel("bert_large");
  const Cluster one = Cluster::SingleServer(1);
  const Cluster two = Cluster::SingleServer(2);
  std::printf("BERT-large (seq len 64) on 16 GB GPUs\n\n");
  std::printf("%-14s %12s %12s %14s %s\n", "global batch", "1 GPU",
              "2 GPUs DP", "2 GPUs FastT", "FastT bootstrap");

  for (int64_t batch : {int64_t{16}, int64_t{32}, int64_t{40}, int64_t{48}}) {
    CalculatorOptions options;
    const auto single = RunDataParallelBaseline(
        model.build, model.name, batch, Scaling::kStrong, one, options);
    const auto dp = RunDataParallelBaseline(model.build, model.name, batch,
                                            Scaling::kStrong, two, options);
    const auto ft = RunFastT(model.build, model.name, batch,
                             Scaling::kStrong, two, options);
    auto show = [](bool oom, double iteration_s) {
      static char buffer[32];
      if (oom) return "OOM";
      std::snprintf(buffer, sizeof(buffer), "%.3f s", iteration_s);
      return static_cast<const char*>(buffer);
    };
    std::printf("%-14lld %12s", (long long)batch,
                show(single.final_sim.oom, single.iteration_s));
    std::printf(" %12s", show(dp.final_sim.oom, dp.iteration_s));
    std::printf(" %14s", show(ft.final_sim.oom, ft.iteration_s));
    std::printf("  %s\n", ft.started_model_parallel
                              ? "model parallel"
                              : "data parallel");
    std::fflush(stdout);
  }
  std::printf(
      "\nBeyond batch 32 a full replica no longer fits in one GPU, so data\n"
      "parallelism OOMs; FastT bootstraps from a layer-wise model-parallel\n"
      "cut and trains batches 40 and 48 (paper Table 3).\n");
  return 0;
}
