// Quickstart: run the full FastT workflow on a small CNN over two simulated
// GPUs and inspect the strategy it produces.
//
//   $ ./build/examples/quickstart
//
// What happens under the hood (paper §4):
//   1. the model is replicated into a data-parallel start graph,
//   2. a few profiled iterations bootstrap the computation/communication
//      cost models,
//   3. OS-DPOS computes placement + execution order (+ splits),
//   4. the strategy is activated and kept only if it measures faster.
#include <cstdio>
#include <map>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "util/strings.h"

using namespace fastt;

int main() {
  const ModelSpec& model = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  std::printf("Model: %s   cluster: %s\n", model.name.c_str(),
              cluster.ToString().c_str());

  CalculatorOptions options;
  const CalculatorResult dp = RunDataParallelBaseline(
      model.build, model.name, model.strong_batch, Scaling::kStrong, cluster,
      options);
  const CalculatorResult ft = RunFastT(model.build, model.name,
                                       model.strong_batch, Scaling::kStrong,
                                       cluster, options);

  std::printf("\nData parallel : %8.1f samples/s  (%.3f ms/iteration)\n",
              SamplesPerSecond(dp), dp.iteration_s * 1e3);
  std::printf("FastT         : %8.1f samples/s  (%.3f ms/iteration)\n",
              SamplesPerSecond(ft), ft.iteration_s * 1e3);

  std::printf("\nFastT pre-training: %d rounds, %d activations, %d "
              "rollbacks, %.1f s simulated strategy time\n",
              ft.rounds, ft.activations, ft.rollbacks, ft.strategy_time_s);
  std::printf("Cost models learned: %zu op entries, %zu device pairs\n",
              ft.comp.num_entries(), ft.comm.num_pairs());

  std::map<DeviceId, int> per_device;
  for (OpId id : ft.graph.LiveOps())
    ++per_device[ft.strategy.placement[static_cast<size_t>(id)]];
  std::printf("\nPlacement:");
  for (const auto& [device, count] : per_device)
    std::printf("  GPU%d: %d ops", device, count);
  std::printf("\nSplits: %zu", ft.strategy.splits.size());
  for (const auto& split : ft.strategy.splits)
    std::printf("  [%s %s x%d]", split.op_name.c_str(),
                SplitDimName(split.dim), split.num_splits);
  std::printf("\nFirst ops in the enforced execution order:");
  for (size_t i = 0; i < 5 && i < ft.strategy.execution_order.size(); ++i)
    std::printf(" %s",
                ft.graph.op(ft.strategy.execution_order[i]).name.c_str());
  std::printf("\n");
  return 0;
}
