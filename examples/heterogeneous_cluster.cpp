// Heterogeneous devices: one fast GPU next to slower ones. Canonical data
// parallelism splits the batch evenly, so every iteration waits for the
// slowest replica; FastT's cost models *learn* each device's speed from
// profiles and its placement shifts work toward the faster silicon — no
// configuration, the same white-box loop.
//
//   $ ./build/examples/heterogeneous_cluster
#include <cstdio>
#include <map>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"

using namespace fastt;

namespace {

Cluster MixedCluster(int gpus, double fast_factor) {
  Cluster base = Cluster::SingleServer(gpus);
  std::vector<Device> devices = base.devices();
  devices[0].speed_factor = fast_factor;  // device 0 is the fast one
  devices[0].name += " (fast)";
  return Cluster(std::move(devices), base.params());
}

}  // namespace

int main() {
  const ModelSpec& model = FindModel("vgg19");
  std::printf("VGG-19, batch %lld, 2 GPUs — GPU0 is 1.8x faster\n\n",
              (long long)model.strong_batch);
  const Cluster cluster = MixedCluster(2, 1.8);

  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(model.build, model.name,
                                          model.strong_batch,
                                          Scaling::kStrong, cluster, options);
  const auto ft = RunFastT(model.build, model.name, model.strong_batch,
                           Scaling::kStrong, cluster, options);

  std::printf("data parallel : %7.1f samples/s (even split waits for the "
              "slow GPU)\n",
              SamplesPerSecond(dp));
  std::printf("FastT         : %7.1f samples/s (%+.1f%%)\n",
              SamplesPerSecond(ft),
              100.0 * (SamplesPerSecond(ft) / SamplesPerSecond(dp) - 1.0));

  std::map<DeviceId, double> busy;
  for (OpId id : ft.graph.LiveOps()) {
    const auto& rec =
        ft.final_sim.op_records[static_cast<size_t>(id)];
    if (rec.device != kInvalidDevice) busy[rec.device] += rec.duration();
  }
  std::printf("\nFastT per-device busy time:");
  for (const auto& [device, seconds] : busy)
    std::printf("  GPU%d %.0f ms", device, seconds * 1e3);
  std::printf("\n(The fast GPU absorbs more work — learned, not "
              "configured.)\n");
  return 0;
}
