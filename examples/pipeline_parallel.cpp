// The paper's §7 extension implemented: GPipe-style micro-batch pipelining
// on top of a layer-wise model-parallel cut. Naive model parallelism keeps
// only one device busy at a time; splitting the mini-batch into M
// micro-batches lets stage s of micro-batch m overlap stage s-1 of
// micro-batch m+1. Synchronous semantics are preserved (all micro-batch
// gradients aggregate before the single weight update).
//
//   $ ./build/examples/pipeline_parallel [model] [gpus] [batch]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "core/strategy_calculator.h"
#include "models/model_zoo.h"

using namespace fastt;

int main(int argc, char** argv) {
  const ModelSpec& model = FindModel(argc > 1 ? argv[1] : "bert_large");
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;
  const int64_t batch =
      argc > 3 ? std::atoll(argv[3]) : model.strong_batch * 2;
  const Cluster cluster = Cluster::SingleServer(gpus);

  std::printf("%s, global batch %lld, %d GPUs — pipeline parallelism\n\n",
              model.name.c_str(), (long long)batch, gpus);
  std::printf("%-16s %14s %12s %8s\n", "micro-batches", "iteration",
              "samples/s", "OOM");
  for (int m : {1, 2, 4, 8}) {
    if (batch < m) break;
    const PipelineGraph p =
        BuildPipeline(model.build, model.name, batch, m, cluster);
    SimOptions so;
    so.dispatch = DispatchMode::kPriority;  // FastT's order enforcement
    so.priorities = p.priorities;
    const SimResult r = Simulate(p.graph, p.placement, cluster, so);
    std::printf("%-16d %11.3f s %12.1f %8s\n", m, r.makespan,
                p.global_batch / (r.makespan + kSessionOverheadS),
                r.oom ? "yes" : "no");
    std::fflush(stdout);
  }
  std::printf(
      "\nMicro-batching fills the pipeline bubbles of naive model\n"
      "parallelism (the m=1 row): throughput rises with M until the\n"
      "per-micro-batch kernels become too small to amortize stage\n"
      "handoffs.\n");
  return 0;
}
