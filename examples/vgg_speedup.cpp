// The paper's headline scenario: training VGG-19 with a fixed global batch
// (strong scaling). Pure data parallelism stops scaling because every
// iteration broadcasts ~550 MB of weights and gathers the same volume of
// gradients through one GPU; FastT's placement gathers the classifier
// replicas next to their weights and keeps scaling.
//
//   $ ./build/examples/vgg_speedup
#include <cstdio>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"

using namespace fastt;

int main() {
  const ModelSpec& model = FindModel("vgg19");
  std::printf("VGG-19, global batch %lld (strong scaling)\n\n",
              (long long)model.strong_batch);
  std::printf("%-18s %14s %14s %10s\n", "cluster", "DP samples/s",
              "FastT samples/s", "gain");

  const std::pair<const char*, Cluster> configs[] = {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2 GPUs", Cluster::SingleServer(2)},
      {"4 GPUs", Cluster::SingleServer(4)},
      {"8 GPUs", Cluster::SingleServer(8)},
      {"2x4 GPUs (2 srv)", Cluster::MultiServer(2, 4)},
  };
  for (const auto& [label, cluster] : configs) {
    CalculatorOptions options;
    const auto dp = RunDataParallelBaseline(model.build, model.name,
                                            model.strong_batch,
                                            Scaling::kStrong, cluster,
                                            options);
    const auto ft = RunFastT(model.build, model.name, model.strong_batch,
                             Scaling::kStrong, cluster, options);
    std::printf("%-18s %14.1f %14.1f %9.1f%%\n", label,
                SamplesPerSecond(dp), SamplesPerSecond(ft),
                100.0 * (SamplesPerSecond(ft) / SamplesPerSecond(dp) - 1.0));
    std::fflush(stdout);
  }
  std::printf(
      "\nNote how DP throughput collapses beyond 4 GPUs and across servers\n"
      "while FastT keeps improving — the effect behind the paper's Table 1\n"
      "and the 'distributed setting amplifies gains' observation.\n");
  return 0;
}
